package pool

import (
	"errors"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/live"
	"repro/internal/migrate"
	"repro/internal/registry"
)

// R-way replication for staged payloads (DESIGN.md §D13).
//
// Placement invariant: a replicated ref's copies live on the R distinct
// ring successors of its key — a pure function of (key, membership), so
// any client holding the cluster map can locate every replica from the
// bare 8-byte key, with no directory service. The pool mints the key
// itself (dmwire.ReplicaKeyBit set, so it can never collide with a
// server's own counter-minted keys) and stages the same payload under it
// on every successor via MStageAt.
//
// The model is the Kademlia one (K-closest placement + republish to the
// CURRENT closest nodes): each staging client tracks its own replicated
// refs and keeps them fully replicated as membership changes. Read
// failover is stateless — any reader probes the successors — but repair
// responsibility follows the ref's producer.

// refMeta is the tracked state of one replicated ref staged by this
// client. replicas is guarded by Client.refMu.
type refMeta struct {
	size     int64
	replicas []uint32 // shards believed to hold a copy
	// epoch is the ref's placement version (DESIGN.md §D16): 1 at stage,
	// bumped by each migration flip so directory merges are
	// last-writer-wins.
	epoch uint64
}

// replicaFactor returns the effective R (>= 1).
func (p *Client) replicaFactor() int {
	if p.cfg.ReplicaFactor <= 1 {
		return 1
	}
	return p.cfg.ReplicaFactor
}

// mintKey mints a cluster-wide replica key: uniformly random with
// dmwire.ReplicaKeyBit set, re-drawn on the (vanishing) chance it is
// already tracked locally. Cross-client collisions surface as
// dm.ErrRefExists at stage time and re-mint there.
func (p *Client) mintKey() uint64 {
	for {
		k := rand.Uint64() | dmwire.ReplicaKeyBit
		p.refMu.Lock()
		_, dup := p.refs[k]
		p.refMu.Unlock()
		if !dup {
			return k
		}
	}
}

// track records a freshly staged replicated ref for the repairer.
func (p *Client) track(key uint64, size int64, replicas []uint32) {
	cp := append([]uint32(nil), replicas...)
	p.refMu.Lock()
	p.refs[key] = &refMeta{size: size, replicas: cp, epoch: 1}
	p.refMu.Unlock()
}

// adopt merges a directory entry learned via anti-entropy sync into the
// tracked set (§D16): unknown refs are added, and a higher placement
// epoch overrides the local belief. Reports whether anything changed.
func (p *Client) adopt(ent registry.Entry) bool {
	p.refMu.Lock()
	defer p.refMu.Unlock()
	m, ok := p.refs[ent.Key]
	if ok && ent.Epoch <= m.epoch {
		return false
	}
	p.refs[ent.Key] = &refMeta{
		size:     ent.Size,
		replicas: append([]uint32(nil), ent.Replicas...),
		epoch:    ent.Epoch,
	}
	return true
}

// dropReplica forgets shard id's copy of key (a migration reclaim).
func (p *Client) dropReplica(key uint64, id uint32) {
	p.refMu.Lock()
	if m, ok := p.refs[key]; ok {
		kept := m.replicas[:0]
		for _, r := range m.replicas {
			if r != id {
				kept = append(kept, r)
			}
		}
		m.replicas = kept
	}
	p.refMu.Unlock()
}

// setEpoch records a migration flip's new placement version.
func (p *Client) setEpoch(key, epoch uint64) {
	p.refMu.Lock()
	if m, ok := p.refs[key]; ok && epoch > m.epoch {
		m.epoch = epoch
	}
	p.refMu.Unlock()
}

// untrack forgets a ref (FreeRef).
func (p *Client) untrack(key uint64) {
	p.refMu.Lock()
	delete(p.refs, key)
	p.refMu.Unlock()
}

// addReplica records that shard id now holds a copy of key.
func (p *Client) addReplica(key uint64, id uint32) {
	p.refMu.Lock()
	if m, ok := p.refs[key]; ok {
		have := false
		for _, r := range m.replicas {
			if r == id {
				have = true
				break
			}
		}
		if !have {
			m.replicas = append(m.replicas, id)
		}
	}
	p.refMu.Unlock()
}

// invalidateShard drops shard id from every tracked replica set: the
// server restarted with a fresh session, so the copies it held are gone.
// Pool-cached payloads homed on it go too — the fresh session starts a
// new epoch history, so cached entries can no longer be tied to it
// (§D15).
func (p *Client) invalidateShard(id uint32) {
	p.cache.InvalidateServer(id)
	p.refMu.Lock()
	for _, m := range p.refs {
		kept := m.replicas[:0]
		for _, r := range m.replicas {
			if r != id {
				kept = append(kept, r)
			}
		}
		m.replicas = kept
	}
	p.refMu.Unlock()
}

// Replicas returns the shard IDs believed to hold ref, primary first
// where known: the tracked set for refs staged by this client, else —
// for replicated refs minted elsewhere — the current ring successors of
// the key. Single-copy refs (server-minted key) return nil.
func (p *Client) Replicas(ref dm.Ref) []uint32 {
	if ref.Key&dmwire.ReplicaKeyBit == 0 {
		return nil
	}
	p.refMu.Lock()
	if m, ok := p.refs[ref.Key]; ok {
		out := append([]uint32(nil), m.replicas...)
		p.refMu.Unlock()
		return out
	}
	p.refMu.Unlock()
	r := p.replicaFactor()
	if r < 2 {
		r = 2 // a foreign replicated ref has at least 2 copies to probe
	}
	return p.ring.Successors(ref.Key, r)
}

// candidates builds the read-failover order for ref: the ref's own
// Server field, then the tracked/derived replica set, then any wire
// hints (a v2 ref's shard list, possibly stale), then the current ring
// successors — deduplicated, healthy shards first. Unhealthy candidates
// stay at the tail: an ejected shard may still answer (ejection is a
// heartbeat verdict, not proof of death), and trying it last costs
// nothing when everything else failed.
func (p *Client) candidates(ref dm.Ref, hints []uint32) []uint32 {
	ids := make([]uint32, 0, 8)
	ids = append(ids, ref.Server)
	ids = append(ids, p.Replicas(ref)...)
	ids = append(ids, hints...)
	if ref.Key&dmwire.ReplicaKeyBit != 0 {
		r := p.replicaFactor()
		if r < 2 {
			r = 2
		}
		ids = append(ids, p.ring.Successors(ref.Key, r)...)
	}
	seen := make(map[uint32]struct{}, len(ids))
	healthy := make([]uint32, 0, len(ids))
	var sick []uint32
	shards := p.shardList()
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		// Out-of-cluster IDs stay in the list (classified unhealthy) so
		// byID can surface dm.ErrBadAddress instead of silently skipping.
		if int(id) < len(shards) && shards[id].healthy.Load() {
			healthy = append(healthy, id)
		} else {
			sick = append(sick, id)
		}
	}
	return append(healthy, sick...)
}

// failoverWorthy reports whether err on one replica justifies trying the
// next: range violations are deterministic (every replica holds the same
// snapshot), everything else — unknown ref (restarted shard), reaped
// session, connection loss, deadline — may be replica-local.
func failoverWorthy(err error) bool {
	return !errors.Is(err, dm.ErrOutOfRange)
}

// ReadRefFrom is ReadRef with explicit replica hints (e.g. the shard
// list carried by a v2 wire ref from another process). Whole-object
// reads are served through the pool's hot-ref cache when enabled —
// checked before shard routing, so a hit costs no RPC at all; a miss
// runs the wire path below, which still fails over across replicas.
func (p *Client) ReadRefFrom(ref dm.Ref, hints []uint32, off int64, dst []byte) error {
	// A freed-ref tombstone fails the read in one map lookup instead of
	// probing every replica (§D16).
	if p.cache.Denied(p.cacheKey(ref)) {
		return dm.ErrBadRef
	}
	if p.refCacheable(ref, off, int64(len(dst))) {
		b, err := p.cachedRead(ref, hints)
		if err != nil {
			return err
		}
		copy(dst, b.Bytes())
		b.Release()
		return nil
	}
	return p.readRefFromWire(ref, hints, off, dst)
}

// registryLocate is the last-resort resolution for a located ref that
// no placement-derived candidate could serve (§D16): ask the key's
// ring successors' directories where the copies live now. The freshest
// entry found is adopted into the tracked set, so the next read goes
// straight there. Only meaningful under RegistryHandoff — without it
// the directories are empty and the lookups would be wasted RPCs.
func (p *Client) registryLocate(key uint64) []uint32 {
	if !p.cfg.RegistryHandoff || key&dmwire.ReplicaKeyBit == 0 {
		return nil
	}
	r := p.replicaFactor()
	if r < 2 {
		r = 2
	}
	shards := p.shardList()
	var best registry.Entry
	found := false
	for _, id := range p.ring.Successors(key, r) {
		if int(id) >= len(shards) || !shards[id].healthy.Load() {
			continue
		}
		ent, err := shards[id].cl.RegGet(0, key)
		if err != nil {
			continue
		}
		if !found || ent.Epoch > best.Epoch {
			best, found = ent, true
		}
	}
	if !found {
		return nil
	}
	p.adopt(best)
	return append([]uint32(nil), best.Replicas...)
}

// readRefFromWire is ReadRefFrom's wire path: candidates are tried in
// failover order; a success on any non-first candidate counts as a
// failover read.
func (p *Client) readRefFromWire(ref dm.Ref, hints []uint32, off int64, dst []byte) error {
	local := ref
	local.Server = 0
	var lastErr error
	tried := make(map[uint32]struct{}, 8)
	for _, id := range p.candidates(ref, hints) {
		tried[id] = struct{}{}
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.cl.ReadRef(local, off, dst); err == nil {
			// Served by anyone but the ref's own primary = a failover
			// read (an ejected primary is skipped, not "tried first").
			if id != ref.Server {
				p.failoverReads.Add(1)
				s.failoverServed.Add(1)
			}
			return nil
		} else {
			lastErr = err
			if !failoverWorthy(err) {
				return err
			}
		}
	}
	// Every placement-derived candidate missed: the ref may have been
	// migrated by a client with a different view — ask the directory.
	for _, id := range p.registryLocate(ref.Key) {
		if _, dup := tried[id]; dup {
			continue
		}
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		if err := s.cl.ReadRef(local, off, dst); err == nil {
			p.failoverReads.Add(1)
			s.failoverServed.Add(1)
			return nil
		}
	}
	if lastErr == nil {
		lastErr = dm.ErrBadRef
	}
	return lastErr
}

// readRefFailover finishes a by-ref read whose first attempt (against
// shard `tried`) already failed with firstErr: the remaining candidates
// are probed in failover order. Used by ReadRefAsync's Wait path.
func (p *Client) readRefFailover(ref dm.Ref, off int64, dst []byte, tried uint32, firstErr error) error {
	if !failoverWorthy(firstErr) {
		return firstErr
	}
	if p.cache.Denied(p.cacheKey(ref)) {
		return dm.ErrBadRef
	}
	local := ref
	local.Server = 0
	lastErr := firstErr
	for _, id := range p.candidates(ref, nil) {
		if id == tried {
			continue
		}
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.cl.ReadRef(local, off, dst); err == nil {
			p.failoverReads.Add(1)
			s.failoverServed.Add(1)
			return nil
		} else {
			lastErr = err
			if !failoverWorthy(err) {
				return err
			}
		}
	}
	return lastErr
}

// ReadRefLeaseFrom is ReadRefLease with explicit replica hints and the
// same failover order as ReadRefFrom. A whole-object read that hits the
// pool cache returns the cached Buf retained — zero copies, zero RPCs;
// the caller must Release it exactly once either way.
func (p *Client) ReadRefLeaseFrom(ref dm.Ref, hints []uint32, off, size int64) (*live.Buf, error) {
	if p.cache.Denied(p.cacheKey(ref)) {
		return nil, dm.ErrBadRef
	}
	if p.refCacheable(ref, off, size) {
		return p.cachedRead(ref, hints)
	}
	return p.readRefLeaseFromWire(ref, hints, off, size)
}

// readRefLeaseFromWire is ReadRefLeaseFrom's wire path (also the cache
// loader, which is why it must not consult the cache itself).
func (p *Client) readRefLeaseFromWire(ref dm.Ref, hints []uint32, off, size int64) (*live.Buf, error) {
	local := ref
	local.Server = 0
	var lastErr error
	tried := make(map[uint32]struct{}, 8)
	for _, id := range p.candidates(ref, hints) {
		tried[id] = struct{}{}
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		b, err := s.cl.ReadRefLease(local, off, size)
		if err == nil {
			if id != ref.Server {
				p.failoverReads.Add(1)
				s.failoverServed.Add(1)
			}
			return b, nil
		}
		lastErr = err
		if !failoverWorthy(err) {
			return nil, err
		}
	}
	for _, id := range p.registryLocate(ref.Key) {
		if _, dup := tried[id]; dup {
			continue
		}
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		if b, err := s.cl.ReadRefLease(local, off, size); err == nil {
			p.failoverReads.Add(1)
			s.failoverServed.Add(1)
			return b, nil
		}
	}
	if lastErr == nil {
		lastErr = dm.ErrBadRef
	}
	return nil, lastErr
}

// freeReplicated frees a replicated ref on every shard that may hold a
// copy. Replicas the repairer already lost race-free report dm.ErrBadRef
// and are ignored; the free succeeds when at least one copy was
// released.
func (p *Client) freeReplicated(ref dm.Ref) error {
	cands := p.candidates(ref, nil)
	p.untrack(ref.Key)
	local := ref
	local.Server = 0
	freed := false
	var lastErr error
	for _, id := range cands {
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		switch err := s.cl.FreeRef(local); {
		case err == nil:
			freed = true
		case errors.Is(err, dm.ErrBadRef):
			// this shard never got (or already lost) its copy
		default:
			lastErr = err
		}
	}
	if freed {
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return dm.ErrBadRef
}

// --- replicated staging ---

// maxStageAttempts bounds key re-mints on cross-client key collisions
// (a random 63-bit draw matching a foreign live ref — astronomically
// rare, but the loop must terminate).
const maxStageAttempts = 3

// repStage is an in-flight replicated stage: one minted key, one
// pipelined MStageAt fan-out to the key's ring successors.
type repStage struct {
	p       *Client
	key     uint64
	data    []byte
	attempt int
	targets []uint32
	futs    []*live.AsyncRef
}

// stageReplicatedAsync mints a cluster key and starts the fan-out; the
// returned AsyncRef's Wait collects the copies and tracks the ref.
func (p *Client) stageReplicatedAsync(data []byte, attempt int) *AsyncRef {
	key := p.mintKey()
	targets := p.ring.Successors(key, p.replicaFactor())
	if len(targets) == 0 {
		return &AsyncRef{err: ErrNoShards}
	}
	rs := &repStage{p: p, key: key, data: data, attempt: attempt, targets: targets}
	rs.futs = make([]*live.AsyncRef, len(targets))
	for i, id := range targets {
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		// Index 0: each shard's live client is single-address.
		rs.futs[i] = s.cl.StageRefAtAsync(0, key, data)
	}
	return &AsyncRef{rep: rs}
}

// wait collects the fan-out. The stage succeeds when at least one copy
// lands (missing replicas are handed to the repairer); a key collision
// frees what landed and retries under a fresh key.
func (rs *repStage) wait() (dm.Ref, error) {
	var placed []uint32
	var collided bool
	var lastErr error
	for i, f := range rs.futs {
		if f == nil {
			continue
		}
		switch _, err := f.Wait(); {
		case err == nil:
			placed = append(placed, rs.targets[i])
		case errors.Is(err, dm.ErrRefExists):
			collided = true
		default:
			lastErr = err
		}
	}
	if collided {
		// Another client owns this key. Roll back our copies and re-mint.
		local := dm.Ref{Key: rs.key, Size: int64(len(rs.data))}
		for _, id := range placed {
			if s, err := rs.p.byID(id); err == nil {
				s.cl.FreeRef(local)
			}
		}
		if rs.attempt+1 >= maxStageAttempts {
			return dm.Ref{}, dm.ErrRefExists
		}
		return rs.p.stageReplicatedAsync(rs.data, rs.attempt+1).Wait()
	}
	if len(placed) == 0 {
		if lastErr == nil {
			lastErr = ErrNoShards
		}
		return dm.Ref{}, lastErr
	}
	ref := dm.Ref{Server: placed[0], Key: rs.key, Size: int64(len(rs.data))}
	rs.p.track(rs.key, ref.Size, placed)
	// Registry handoff (§D16): publish the placement to each replica
	// shard's directory, making the ref cluster-owned — it now survives
	// this producer's lease reap and any client can repair or migrate it.
	if rs.p.cfg.RegistryHandoff {
		rs.p.regPublish(registry.Entry{Key: rs.key, Size: ref.Size, Epoch: 1, Replicas: placed})
	}
	if len(placed) < len(rs.targets) {
		rs.p.kickRepair() // born under-replicated
	}
	return ref, nil
}

// regPublish merges ent into the directory of every shard it names
// (best-effort: a missed shard converges later via anti-entropy sync).
func (p *Client) regPublish(ent registry.Entry) {
	for _, id := range ent.Replicas {
		if s, err := p.byID(id); err == nil && s.healthy.Load() {
			s.cl.RegPut(0, ent)
		}
	}
}

// --- repair ---

// kickRepair schedules an immediate repair pass (coalescing with any
// pass already pending).
func (p *Client) kickRepair() {
	select {
	case p.repairKick <- struct{}{}:
	default:
	}
}

// repairBPS returns the effective repair bandwidth bound in bytes/sec
// (0 = unlimited).
func (p *Client) repairBPS() int64 {
	switch b := p.cfg.RepairBytesPerSec; {
	case b == 0:
		return 32 << 20
	case b < 0:
		return 0
	default:
		return b
	}
}

// repairLoop is the background repairer: woken by topology changes
// (ejection and rejoin kick it) and by the periodic scan, it walks the
// tracked refs and restores full replication.
func (p *Client) repairLoop() {
	defer p.wg.Done()
	interval := p.cfg.RepairInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	var tickC <-chan time.Time
	if interval > 0 {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-p.stop:
			return
		case <-p.repairKick:
		case <-tickC:
		}
		if p.cfg.RegistryHandoff {
			p.syncPass()
		}
		p.repairPass()
	}
}

// poolShardOps adapts the pool client to the migration engine's
// cluster view (migrate.ShardOps): shard-to-shard copies run as a read
// from the source followed by a staged re-put on the target, all over
// this client's per-shard sessions.
type poolShardOps struct{ p *Client }

func (o poolShardOps) Healthy(id uint32) bool {
	shards := o.p.shardList()
	return int(id) < len(shards) && shards[id].healthy.Load()
}

func (o poolShardOps) ReadRef(id uint32, key uint64, size, off int64, dst []byte) error {
	s, err := o.p.byID(id)
	if err != nil {
		return err
	}
	return s.cl.ReadRef(dm.Ref{Key: key, Size: size}, off, dst)
}

func (o poolShardOps) StageAt(id uint32, key uint64, data []byte) error {
	s, err := o.p.byID(id)
	if err != nil {
		return err
	}
	_, err = s.cl.StageRefAt(0, key, data)
	return err
}

func (o poolShardOps) FreeRef(id uint32, key uint64) error {
	s, err := o.p.byID(id)
	if err != nil {
		return err
	}
	return s.cl.FreeRef(dm.Ref{Key: key})
}

func (o poolShardOps) RegPut(id uint32, ent registry.Entry) error {
	s, err := o.p.byID(id)
	if err != nil {
		return err
	}
	return s.cl.RegPut(0, ent)
}

// placements snapshots the tracked refs as planner input, sorted by key
// for deterministic chunking.
func (p *Client) placements() []migrate.Placement {
	p.refMu.Lock()
	out := make([]migrate.Placement, 0, len(p.refs))
	for k, m := range p.refs {
		out = append(out, migrate.Placement{
			Key:   k,
			Size:  m.size,
			Epoch: m.epoch,
			Have:  append([]uint32(nil), m.replicas...),
		})
	}
	p.refMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// repairPass is the unified repair/rebalance pass (DESIGN.md §D13,
// §D16): the planner diffs every tracked ref's believed placement
// against the CURRENT ring successors of its key (the Kademlia
// republish rule) and the executor converges them — re-staging missing
// copies exactly as the old repairer did, and additionally migrating
// refs whose wanted placement moved (a joined or rejoined shard, a
// ReplicaFactor change): copy to the newcomers, flip the directory
// entry, then reclaim the surplus copies the repair-only model used to
// leak. Copies are paced against the repair-bandwidth budget; a
// re-stage answered with dm.ErrRefExists means another repairer beat
// us — success, not failure.
func (p *Client) repairPass() {
	r := p.replicaFactor()
	if r <= 1 {
		return
	}
	moves := migrate.Plan(p.placements(), func(key uint64) []uint32 {
		return p.ring.Successors(key, r)
	}, migrate.Limits{})
	if len(moves) == 0 {
		return
	}
	movedKeys := make(map[uint64]struct{}, len(moves))
	ex := &migrate.Executor{
		Ops:         poolShardOps{p},
		BytesPerSec: p.repairBPS(),
		Stop:        p.stop,
		Registry:    p.cfg.RegistryHandoff,
		// The plan is a snapshot; a ref freed since planning must not be
		// resurrected by a stale copy.
		Skip: func(key uint64) bool {
			p.refMu.Lock()
			_, ok := p.refs[key]
			p.refMu.Unlock()
			return !ok
		},
		OnCopied: func(key uint64, id uint32, size int64, fresh bool) {
			if fresh {
				p.repairBytes.Add(size)
			}
			p.repairsDone.Add(1)
			if s, err := p.byID(id); err == nil {
				s.repairsIn.Add(1)
			}
			p.addReplica(key, id)
		},
		OnDropped: func(key uint64, id uint32) {
			p.dropReplica(key, id)
			p.reclaimedReplicas.Add(1)
			movedKeys[key] = struct{}{}
		},
		OnFlip: func(key, epoch uint64, want []uint32) {
			p.setEpoch(key, epoch)
		},
		OnUnreadable: func(key uint64) {
			// Every believed copy is provably gone. If the directory has no
			// entry either, the ref was freed by another client after we
			// learned of it (an anti-entropy ghost) — stop tracking it, or
			// the pass would chase it forever.
			if p.cfg.RegistryHandoff && len(p.registryLocate(key)) == 0 {
				p.untrack(key)
			}
		},
	}
	res := ex.Run(moves)
	p.repairErrors.Add(int64(res.Errors))
	p.migratedRefs.Add(int64(res.MovedRefs))
	p.migratedBytes.Add(int64(res.MovedBytes))
}

// syncPass is the anti-entropy half of the registry handoff (§D16): it
// pages each healthy shard's directory (resuming from a per-shard
// cursor) and adopts entries this client does not track — refs staged
// by clients that have since departed. Adoption puts them on this
// client's repair work list, so the cluster keeps them replicated and
// migrates them like its own.
func (p *Client) syncPass() {
	const pageLimit = dmwire.MaxRegSyncEntries
	for _, s := range p.shardList() {
		select {
		case <-p.stop:
			return
		default:
		}
		if !s.healthy.Load() {
			continue
		}
		p.refMu.Lock()
		after := p.syncCursors[s.id]
		p.refMu.Unlock()
		page, err := s.cl.RegSync(0, after, pageLimit)
		if err != nil {
			continue // partitioned mid-sync; retry next pass
		}
		for _, ent := range page {
			p.adopt(ent)
		}
		p.refMu.Lock()
		if len(page) < pageLimit {
			p.syncCursors[s.id] = 0 // wrapped: restart from the top next pass
		} else {
			p.syncCursors[s.id] = page[len(page)-1].Key
		}
		p.refMu.Unlock()
	}
}

// Rebalance runs one synchronous repair/rebalance pass (plus an
// anti-entropy sync under RegistryHandoff) and reports what it did —
// the dmctl `pool rebalance` entry point. The background repairer runs
// the same pass; this just gives operators a deliberate trigger and a
// result to look at.
func (p *Client) Rebalance() RebalanceResult {
	before := RebalanceResult{
		MigratedRefs:      p.migratedRefs.Load(),
		MigratedBytes:     p.migratedBytes.Load(),
		ReclaimedReplicas: p.reclaimedReplicas.Load(),
		RepairsDone:       p.repairsDone.Load(),
		Errors:            p.repairErrors.Load(),
	}
	if p.cfg.RegistryHandoff {
		p.syncPass()
	}
	p.repairPass()
	res := RebalanceResult{
		MigratedRefs:      p.migratedRefs.Load() - before.MigratedRefs,
		MigratedBytes:     p.migratedBytes.Load() - before.MigratedBytes,
		ReclaimedReplicas: p.reclaimedReplicas.Load() - before.ReclaimedReplicas,
		RepairsDone:       p.repairsDone.Load() - before.RepairsDone,
		Errors:            p.repairErrors.Load() - before.Errors,
	}
	res.TrackedRefs, res.OffPlacement = p.AuditPlacement()
	return res
}

// RebalanceResult is one Rebalance call's delta plus a placement audit.
type RebalanceResult struct {
	MigratedRefs      int64 `json:"migrated_refs"`
	MigratedBytes     int64 `json:"migrated_bytes"`
	ReclaimedReplicas int64 `json:"reclaimed_replicas"`
	RepairsDone       int64 `json:"repairs_done"`
	Errors            int64 `json:"errors"`
	TrackedRefs       int   `json:"tracked_refs"`
	OffPlacement      int   `json:"off_placement"`
}

// AuditPlacement counts tracked refs whose believed replica set is not
// exactly the ring's wanted placement (the off-ring fraction dmload and
// BenchmarkPoolRebalance report). Zero off-placement means migration
// has fully converged.
func (p *Client) AuditPlacement() (total, offPlacement int) {
	r := p.replicaFactor()
	for _, pl := range p.placements() {
		total++
		want := p.ring.Successors(pl.Key, r)
		if len(want) != len(pl.Have) {
			offPlacement++
			continue
		}
		wantSet := make(map[uint32]struct{}, len(want))
		for _, id := range want {
			wantSet[id] = struct{}{}
		}
		ok := true
		for _, id := range pl.Have {
			if _, in := wantSet[id]; !in {
				ok = false
				break
			}
		}
		if !ok {
			offPlacement++
		}
	}
	return total, offPlacement
}

// --- observability ---

// UnderReplicated is the repair-progress gauge: the number of tracked
// replicated refs with fewer live replicas than the target (R, or the
// current member count when the ring has shrunk below R). It returns to
// zero when repair has converged.
func (p *Client) UnderReplicated() int {
	r := p.replicaFactor()
	if r <= 1 {
		return 0
	}
	members := p.ring.Size()
	want := r
	if members < want {
		want = members
	}
	if want == 0 {
		return 0
	}
	n := 0
	shards := p.shardList()
	p.refMu.Lock()
	defer p.refMu.Unlock()
	for _, m := range p.refs {
		alive := 0
		for _, id := range m.replicas {
			if int(id) < len(shards) && shards[id].healthy.Load() {
				alive++
			}
		}
		if alive < want {
			n++
		}
	}
	return n
}

// ReplicaFactorEffective returns the effective replica factor (>= 1;
// the configured R clamped into its valid range at Dial).
func (p *Client) ReplicaFactorEffective() int { return p.replicaFactor() }

// TrackedRefs returns the number of replicated refs this client is
// responsible for repairing.
func (p *Client) TrackedRefs() int {
	p.refMu.Lock()
	defer p.refMu.Unlock()
	return len(p.refs)
}

// FailoverReads returns how many reads were served by a non-primary
// replica after the first-choice shard failed.
func (p *Client) FailoverReads() int64 { return p.failoverReads.Load() }

// RepairsDone returns how many replica copies the repairer has restored
// (including re-stages another repairer won).
func (p *Client) RepairsDone() int64 { return p.repairsDone.Load() }

// RepairErrors returns how many repair reads/stages failed.
func (p *Client) RepairErrors() int64 { return p.repairErrors.Load() }

// RepairBytes returns the payload bytes the repairer has copied.
func (p *Client) RepairBytes() int64 { return p.repairBytes.Load() }

// MigratedRefs returns how many refs the rebalancer has moved onto
// their wanted ring placement (copy + flip + reclaim; §D16).
func (p *Client) MigratedRefs() int64 { return p.migratedRefs.Load() }

// MigratedBytes returns the payload bytes staged by those migrations.
func (p *Client) MigratedBytes() int64 { return p.migratedBytes.Load() }

// ReclaimedReplicas returns how many surplus replica copies the
// rebalancer has freed — the copies the repair-only model leaked.
func (p *Client) ReclaimedReplicas() int64 { return p.reclaimedReplicas.Load() }

// RegistryEntries pages one shard's authoritative directory: up to
// limit entries with Key > afterKey in key order (the server caps a
// page at dmwire.MaxRegSyncEntries). It is the raw anti-entropy read
// that syncPass and dmctl's `pool registry` dump are built on.
func (p *Client) RegistryEntries(shard uint32, afterKey uint64, limit int) ([]registry.Entry, error) {
	s, err := p.byID(shard)
	if err != nil {
		return nil, err
	}
	return s.cl.RegSync(0, afterKey, limit)
}

// RegistryLookup queries one shard's directory for a single key;
// dm.ErrBadRef means that shard holds no entry for it.
func (p *Client) RegistryLookup(shard uint32, key uint64) (registry.Entry, error) {
	s, err := p.byID(shard)
	if err != nil {
		return registry.Entry{}, err
	}
	return s.cl.RegGet(0, key)
}

// ReplicaStat is one shard's replication counters (dmctl pool stats).
type ReplicaStat struct {
	Shard   uint32
	Healthy bool
	// RefsPrimary counts tracked refs whose first replica (the Server
	// field handed to the application) is this shard.
	RefsPrimary int
	// RefsReplica counts tracked replica copies on this shard, primary
	// included.
	RefsReplica int
	// FailoverReads counts reads this shard served as a fallback replica.
	FailoverReads int64
	// RepairsIn counts replica copies repaired onto this shard.
	RepairsIn int64
}

// ReplicaStats snapshots per-shard replication counters, indexed by
// shard ID.
func (p *Client) ReplicaStats() []ReplicaStat {
	shards := p.shardList()
	out := make([]ReplicaStat, len(shards))
	for i, s := range shards {
		out[i] = ReplicaStat{
			Shard:         s.id,
			Healthy:       s.healthy.Load(),
			FailoverReads: s.failoverServed.Load(),
			RepairsIn:     s.repairsIn.Load(),
		}
	}
	p.refMu.Lock()
	for _, m := range p.refs {
		for j, id := range m.replicas {
			if int(id) >= len(out) {
				continue
			}
			out[id].RefsReplica++
			if j == 0 {
				out[id].RefsPrimary++
			}
		}
	}
	p.refMu.Unlock()
	return out
}
