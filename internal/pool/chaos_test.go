package pool

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/faultnet"
	"repro/internal/live"
)

// TestChaosKillShardReplicated is the replication gauntlet, run under
// -race in make check: an R=2 cluster of three shards takes a concurrent
// stage burst, one shard is CRASHED mid-burst (listener and connections
// killed, memory lost — harsher than a partition), and the cluster must
//
//   - lose no data: every ref staged before the crash stays readable
//     through replica failover, byte-identical,
//   - keep every stage succeeding throughout (R=2 puts at most one copy
//     of any payload on the victim),
//   - converge repair: the under-replicated gauge returns to zero on the
//     survivors after ejection,
//   - re-admit the shard when a FRESH server process restarts on the same
//     address (new session — the rejoin path must re-register, not just
//     resume heartbeats) and re-replicate onto it, and
//   - hold D6/D8 conservation on every shard at the end.
func TestChaosKillShardReplicated(t *testing.T) {
	const shards = 3
	const victim = 1
	const leaseTTL = 400 * time.Millisecond

	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096, LeaseTTL: leaseTTL}
	srvs := make([]*live.Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		if i == victim {
			continue
		}
		srvs[i], addrs[i] = startShard(t, uint32(i), scfg)
	}
	// The victim serves on a crashable listener so a fresh server process
	// can come back on the same address.
	vcfg := scfg
	vcfg.HasShard, vcfg.ShardID = true, victim
	srv1 := live.NewServer(vcfg)
	rst, vln, err := faultnet.NewRestartable("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(vln) // returns an accept error after Crash; that's the point
	srvs[victim], addrs[victim] = srv1, rst.Addr()

	type topo struct {
		shard   uint32
		healthy bool
	}
	events := make(chan topo, 16)
	pcfg := Config{
		Shards:         addrs,
		UnhealthyAfter: 2,
		RejoinPoll:     100 * time.Millisecond,
		ReplicaFactor:  2,
		RepairInterval: 100 * time.Millisecond,
		OnTopology:     func(shard uint32, healthy bool) { events <- topo{shard, healthy} },
	}
	pcfg.Client.HeartbeatInterval = 50 * time.Millisecond
	pcfg.Client.Net.CallTimeout = 500 * time.Millisecond
	pcfg.Client.Net.AttemptTimeout = 100 * time.Millisecond
	pcfg.Client.Net.DialTimeout = 100 * time.Millisecond
	p, err := Dial(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}
	waitEvent := func(what string, want topo) {
		t.Helper()
		for {
			select {
			case ev := <-events:
				if ev == want {
					return
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out waiting for %s", what)
			}
		}
	}

	// bodyOf gives each ref its own payload so failover reads prove they
	// returned the right object, not just some bytes.
	bodyOf := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 8192) }

	// Pre-crash refs, enough of them that several have the victim as
	// primary (first ring successor) — those are the ones whose reads MUST
	// fail over.
	var seeded []dm.Ref
	victimPrimary := 0
	for i := 0; i < 200 && (len(seeded) < 16 || victimPrimary < 3); i++ {
		ref, err := p.StageRef(bodyOf(len(seeded)))
		if err != nil {
			t.Fatal(err)
		}
		if ref.Server == victim {
			victimPrimary++
		}
		seeded = append(seeded, ref)
	}
	if victimPrimary < 3 {
		t.Fatalf("only %d of %d seeded refs have the victim as primary", victimPrimary, len(seeded))
	}

	// Concurrent burst across the crash. Every stage must succeed: at
	// R=2 over 3 shards the victim holds at most one of the two copies.
	// The retained population is capped (the rest staged-then-freed) so
	// an unraced fast run can't exhaust the shards' page budget — this
	// probes crash behavior, not capacity.
	var stop atomic.Bool
	var burstMu sync.Mutex
	var burst []dm.Ref
	var stageFails atomic.Int64
	var stageErr error // first stage error, under burstMu, for the failure report
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ref, err := p.StageRef(bodyOf(1000 + g))
				if err != nil {
					stageFails.Add(1)
					burstMu.Lock()
					if stageErr == nil {
						stageErr = err
					}
					burstMu.Unlock()
					continue
				}
				burstMu.Lock()
				keep := len(burst) < 64
				if keep {
					burst = append(burst, ref)
				}
				burstMu.Unlock()
				if !keep {
					p.FreeRef(ref) // errors fine mid-crash; lease reap covers strays
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // mid-burst
	rst.Crash()
	srv1.Close() // the process is gone; its memory and sessions with it

	waitEvent("victim ejection", topo{victim, false})
	stop.Store(true)
	wg.Wait()
	if n := stageFails.Load(); n != 0 {
		burstMu.Lock()
		first := stageErr
		burstMu.Unlock()
		t.Fatalf("%d stages failed across the crash (first: %v)", n, first)
	}

	// Zero data loss: every pre-crash ref reads back byte-identical
	// through failover.
	for i, ref := range seeded {
		got := make([]byte, ref.Size)
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("seeded ref %d (primary %d) unreadable after crash: %v", i, ref.Server, err)
		}
		if !bytes.Equal(got, bodyOf(i)) {
			t.Fatalf("seeded ref %d read wrong bytes after crash", i)
		}
	}
	if p.FailoverReads() == 0 {
		t.Fatal("no reads were served by failover despite victim-primary refs")
	}

	// Repair must converge on the survivors: every tracked ref back to 2
	// live replicas.
	waitFor(t, 10*time.Second, "repair convergence on survivors", func() bool {
		return p.UnderReplicated() == 0
	})
	if p.RepairsDone() == 0 {
		t.Fatal("repair converged without doing any repairs")
	}

	// A FRESH server process restarts on the victim's address: same shard
	// ID, brand-new session. The rejoin poller must detect the reaped
	// session, re-register, and re-admit the shard.
	srv2 := live.NewServer(vcfg)
	ln2, err := rst.Restart()
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		srv2.Serve(ln2)
	}()
	t.Cleanup(func() {
		srv2.Close()
		<-done2
	})
	srvs[victim] = srv2

	waitEvent("victim re-admission", topo{victim, true})

	// The repairer re-homes refs onto the rejoined shard (the placement
	// invariant says the CURRENT successors hold the copies), and the
	// gauge stays converged.
	waitFor(t, 10*time.Second, "re-replication onto the restarted shard", func() bool {
		return srv2.LiveRefs() > 0 && p.UnderReplicated() == 0
	})

	// Everything still reads back, survivors and restartee alike.
	all := append([]dm.Ref(nil), seeded...)
	burstMu.Lock()
	all = append(all, burst...)
	burstMu.Unlock()
	for i, ref := range all {
		got := make([]byte, ref.Size)
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("ref %d unreadable after rejoin: %v", i, err)
		}
	}

	repairedIn := 0
	for _, st := range p.ReplicaStats() {
		repairedIn += int(st.RepairsIn)
	}
	if repairedIn == 0 {
		t.Fatal("per-shard repair counters recorded nothing")
	}

	// Drain and check conservation on every shard, restartee included.
	for _, ref := range all {
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "all copies released", func() bool {
		return srvs[0].LiveRefs() == 0 && srvs[2].LiveRefs() == 0 && srv2.LiveRefs() == 0
	})
	checkAllInvariants(t, srvs)
}

// TestChaosPartitionOneShard is the pool's failover gauntlet, run under
// -race in make check: three shards serve a concurrent stage/read burst,
// one shard is partitioned mid-burst, and the cluster must
//
//   - keep serving on the survivors throughout (reads of refs staged on
//     them before the partition included),
//   - eject the partitioned shard from the ring once its heartbeats
//     accumulate consecutive failures (observed via the topology
//     callback), after which every new stage succeeds and lands on a
//     survivor,
//   - have the partitioned server reap the client's session within ~1
//     lease TTL (its pages return to the free pool), and
//   - hold D6/D8 conservation on every shard at the end.
func TestChaosPartitionOneShard(t *testing.T) {
	const shards = 3
	const victim = 1
	const leaseTTL = 400 * time.Millisecond

	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096, LeaseTTL: leaseTTL}
	srvs := make([]*live.Server, shards)
	addrs := make([]string, shards)
	injs := make(map[string]*faultnet.Injector, shards)
	for i := 0; i < shards; i++ {
		srv, addr := startShard(t, uint32(i), scfg)
		srvs[i] = srv
		addrs[i] = addr
		injs[addr] = faultnet.New()
	}

	ejected := make(chan uint32, shards)
	pcfg := Config{
		Shards:         addrs,
		UnhealthyAfter: 2,
		RejoinPoll:     -1, // a reaped session cannot rejoin; don't poll
		OnTopology: func(shard uint32, healthy bool) {
			if !healthy {
				ejected <- shard
			}
		},
	}
	pcfg.Client.HeartbeatInterval = 50 * time.Millisecond
	pcfg.Client.Net.CallTimeout = 500 * time.Millisecond
	pcfg.Client.Net.AttemptTimeout = 100 * time.Millisecond
	pcfg.Client.Net.DialTimeout = 100 * time.Millisecond
	pcfg.Client.Net.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return injs[addr].Conn(c), nil
	}
	p, err := Dial(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}

	body := bytes.Repeat([]byte{0x5a}, 8192)

	// Seed refs on the survivors before any fault, to prove existing
	// placements keep resolving through the partition.
	var seeded []dm.Ref
	for key := uint64(0); len(seeded) < 8; key++ {
		id, _ := p.ring.Lookup(key)
		if id == victim {
			continue
		}
		ref, err := p.StageRefKeyed(key, body)
		if err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, ref)
	}

	// Concurrent burst: stagers and readers hammer the pool across the
	// partition transition. Errors are expected only on ops routed to the
	// victim between the cut and its ejection.
	var stop atomic.Bool
	var survivorFails atomic.Int64
	partitioned := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ref, err := p.StageRef(body)
				if err == nil {
					if err := p.ReadRef(ref, 0, make([]byte, len(body))); err != nil && ref.Server != victim {
						survivorFails.Add(1)
					}
					p.FreeRef(ref)
				}
				select {
				case <-partitioned:
					// After the cut, reads of pre-partition survivor refs
					// must keep working.
					sr := seeded[i%len(seeded)]
					if err := p.ReadRef(sr, 0, make([]byte, len(body))); err != nil {
						survivorFails.Add(1)
					}
				default:
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // mid-burst
	injs[addrs[victim]].Partition()
	close(partitioned)

	// The victim's failing heartbeats must eject it from the ring.
	select {
	case id := <-ejected:
		if id != victim {
			t.Fatalf("ejected shard %d, want %d", id, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned shard was never ejected")
	}
	stop.Store(true)
	wg.Wait()
	if n := survivorFails.Load(); n != 0 {
		t.Fatalf("%d survivor ops failed during the partition", n)
	}

	// Post-ejection, every new stage must succeed and avoid the victim.
	for i := 0; i < 24; i++ {
		ref, err := p.StageRef(body)
		if err != nil {
			t.Fatalf("stage %d after ejection: %v", i, err)
		}
		if ref.Server == victim {
			t.Fatalf("stage %d landed on the ejected shard", i)
		}
		got := make([]byte, len(body))
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("read %d after ejection: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("read %d wrong bytes", i)
		}
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free %d after ejection: %v", i, err)
		}
	}
	if h := p.Healthy(); len(h) != shards-1 {
		t.Fatalf("healthy set %v, want %d survivors", h, shards-1)
	}

	// The victim reaps the dead session within ~1 lease TTL of the cut:
	// everything the pool staged there is reclaimed.
	waitFor(t, 2*leaseTTL+time.Second, "victim lease reap", func() bool {
		return srvs[victim].LiveRefs() == 0 && srvs[victim].FreePages() == scfg.NumPages
	})

	// Conservation on every shard, survivors included.
	for _, ref := range seeded {
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	checkAllInvariants(t, srvs)
	if st := p.Stats(); st.Retries == 0 || st.HeartbeatFailures == 0 {
		t.Fatalf("chaos run recorded no retries/heartbeat failures: %+v", st)
	}
}
