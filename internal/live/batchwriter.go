package live

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// errWriterClosed reports a frame submitted to a writer already in
// graceful teardown; it wraps errConnFailed so retry logic treats it like
// any other dead-connection error.
var errWriterClosed = fmt.Errorf("%w: writer closed", errConnFailed)

// Per-connection coalescing writer (DESIGN.md §D10). The live path used
// to issue one writev syscall per frame under a per-connection mutex; at
// small-op rates the syscall, not the bytes, dominates. Instead, every
// connection now owns one batchWriter: callers enqueue fully framed,
// pooled buffers into a bounded submission queue drained by a single
// flusher goroutine that writes *everything currently queued* as one
// vectored write — group commit. The flusher never waits for more work
// before flushing, so an idle connection pays no added latency; batching
// emerges only under load, while the flusher is inside the previous
// writev and new frames pile up behind it.
//
// Frames above the coalesce cutoff skip the queue entirely and take the
// direct path: a synchronous vectored write under the same socket lock,
// preserving the zero-copy property for bulk bodies (copying them into a
// queue buffer would cost more than the syscall it saves).

// DefaultCoalesceLimit is the default cutoff (total frame bytes) below
// which frames are copied into the coalescing queue; larger frames take
// the direct zero-copy path.
const DefaultCoalesceLimit = 16 << 10

// DefaultCoalesceBatchBytes is the default cap on one coalesced vectored
// write; the queue bound (backpressure point) is four times this.
const DefaultCoalesceBatchBytes = 256 << 10

// DefaultCoalesceSpin is the default cap on the adaptive spin-then-flush
// window (NodeConfig.CoalesceSpin): long enough to gather a back-to-back
// burst, short enough to be invisible next to a network round trip.
const DefaultCoalesceSpin = 20 * time.Microsecond

// maxGapSample clamps one inter-enqueue gap sample fed to the EWMA, so a
// single long idle period cannot poison the estimate for the next burst.
const maxGapSample = time.Millisecond

// writeStats aggregates wire-write counters across one endpoint's
// connections; all its batchWriters share one instance.
type writeStats struct {
	frames  atomic.Uint64 // frames shipped (inline + coalesced + direct)
	batches atomic.Uint64 // vectored flushes of coalescing queues
	inline  atomic.Uint64 // frames written inline by an idle-path submitter
	direct  atomic.Uint64 // frames that took the direct zero-copy path
	bytes   atomic.Uint64 // frame bytes shipped
	dropped atomic.Uint64 // frames dropped undelivered by a dying writer
	spins   atomic.Uint64 // flushes whose adaptive spin gathered extra frames
	qframes atomic.Int64  // gauge: frames sitting in submission queues
	qbytes  atomic.Int64  // gauge: bytes sitting in submission queues
}

// WriteStats is a snapshot of an endpoint's wire-write counters, for
// monitoring (dmserverd -stats) and the batching benchmarks.
// CoalescedFrames (= Frames - InlineFrames - DirectFrames) rode the
// submission queues and went out in Batches vectored writes;
// GroupCommitFactor is their ratio — average frames per flush.
// QueueFrames/QueueBytes are point-in-time gauges of what is queued but
// not yet flushed (the batchwriter's backpressure depth). SpinBatches
// counts flushes whose adaptive spin window actually gathered more
// frames before committing.
type WriteStats struct {
	Frames        uint64
	Batches       uint64
	InlineFrames  uint64
	DirectFrames  uint64
	Bytes         uint64
	DroppedFrames uint64
	SpinBatches   uint64

	CoalescedFrames   uint64
	GroupCommitFactor float64

	QueueFrames int64
	QueueBytes  int64
}

// batchWriterConfig sizes one connection's writer; derived from
// NodeConfig by batchConfig().
type batchWriterConfig struct {
	limit        int           // coalesce cutoff in frame bytes; negative disables
	batchBytes   int           // max bytes drained into one vectored write
	queueBytes   int           // submission-queue bound (enqueue backpressure)
	writeTimeout time.Duration // deadline for writes with no frame deadline
	spin         time.Duration // adaptive spin-then-flush cap; <= 0 disables
}

// batchItem is one queued frame: a pooled buffer the writer owns, plus
// the latest instant its write may complete (zero = unbounded).
type batchItem struct {
	buf      []byte
	deadline time.Time
}

// batchWriter owns the write side of one connection.
type batchWriter struct {
	c     net.Conn
	cfg   batchWriterConfig
	stats *writeStats
	// onFail is invoked once with the first write error so the owner can
	// poison its connection state (client: conn.fail; server: close the
	// conn so the read loop exits). It may call kill — that is idempotent
	// and never invoked under the writer's locks.
	onFail   func(error)
	failOnce sync.Once

	// wmu serializes socket writes between the flusher and the direct
	// path so frames never interleave mid-frame. Relative order between
	// queued and direct frames is unspecified — harmless, every frame is
	// an independent multiplexed request or response.
	wmu sync.Mutex

	// spinOK gates the adaptive spin at construction time: spinning only
	// pays when producers can run on another processor while the flusher
	// lingers. With GOMAXPROCS=1 the spin window just steals the only
	// processor from the very producers it is waiting for (measured ~30%
	// small-op throughput loss), so it is disabled outright there.
	spinOK bool

	mu       sync.Mutex
	nonEmpty sync.Cond // flusher waits: queue non-empty, dying, or closing
	space    sync.Cond // enqueuers wait: queue has room, or writer dying
	queue    []batchItem
	qbytes   int
	dead     error
	closing  bool
	done     chan struct{} // closed when the flusher exits

	// Adaptive coalescing state (under mu): gapEWMA estimates the
	// inter-enqueue gap; the flusher spins only while it indicates a
	// burst in progress (gap <= cfg.spin).
	gapEWMA time.Duration
	lastEnq time.Time
}

// newBatchWriter starts the flusher goroutine for c. The goroutine exits
// after kill (drop queued frames) or close (flush queued frames).
func newBatchWriter(c net.Conn, cfg batchWriterConfig, stats *writeStats, onFail func(error)) *batchWriter {
	bw := &batchWriter{c: c, cfg: cfg, stats: stats, onFail: onFail, done: make(chan struct{})}
	bw.spinOK = cfg.spin > 0 && runtime.GOMAXPROCS(0) > 1
	bw.nonEmpty.L = &bw.mu
	bw.space.L = &bw.mu
	go bw.flushLoop()
	return bw
}

// coalesce reports whether a frame totalling n bytes rides the queue
// (copied, group-committed) or the direct zero-copy path.
func (bw *batchWriter) coalesce(n int) bool {
	return bw.cfg.limit >= 0 && n <= bw.cfg.limit
}

// enqueue submits one fully framed buffer. Ownership of buf transfers to
// the writer on success and failure alike (it is recycled either way), so
// buf must be pooled (or pool-safe) and must not be touched after the
// call. Blocks while the queue is over its bound — the frame-level
// backpressure that used to come from the blocking per-frame write.
// deadline, when nonzero, bounds this frame's write; an expired deadline
// fails the batch write and poisons the connection, exactly like the old
// per-frame SetWriteDeadline.
func (bw *batchWriter) enqueue(buf []byte, deadline time.Time) error {
	bw.mu.Lock()
	for bw.dead == nil && !bw.closing && bw.qbytes > 0 && bw.qbytes+len(buf) > bw.cfg.queueBytes {
		bw.space.Wait()
	}
	if bw.dead != nil || bw.closing {
		err := bw.dead
		bw.mu.Unlock()
		putBuf(buf)
		bw.stats.dropped.Add(1)
		if err == nil {
			err = errWriterClosed
		}
		return err
	}
	if bw.spinOK { // the EWMA only feeds the spin decision
		now := time.Now()
		if !bw.lastEnq.IsZero() {
			gap := now.Sub(bw.lastEnq)
			if gap > maxGapSample {
				gap = maxGapSample
			}
			if bw.gapEWMA == 0 {
				bw.gapEWMA = gap
			} else {
				bw.gapEWMA = (7*bw.gapEWMA + gap) / 8
			}
		}
		bw.lastEnq = now
	}
	bw.queue = append(bw.queue, batchItem{buf: buf, deadline: deadline})
	bw.qbytes += len(buf)
	bw.stats.qframes.Add(1)
	bw.stats.qbytes.Add(int64(len(buf)))
	bw.nonEmpty.Signal()
	bw.mu.Unlock()
	return nil
}

// enqueueInline is enqueue for latency-sensitive submitters: when nothing
// is queued and the socket is uncontended, the calling goroutine writes
// the frame itself — an idle connection skips the flusher handoff (two
// scheduler wakeups) entirely. Under load the TryLock fails or the queue
// is non-empty and the frame falls back to the queue, so group commit
// still emerges exactly when it pays. The reordering this allows between
// an inline frame and a concurrently flushed batch is harmless: frames
// are independent, matched by request id, not by position in the stream.
// Ownership of buf transfers as with enqueue.
func (bw *batchWriter) enqueueInline(buf []byte, deadline time.Time) error {
	bw.mu.Lock()
	if bw.dead == nil && !bw.closing && len(bw.queue) == 0 && bw.wmu.TryLock() {
		bw.mu.Unlock()
		if deadline.IsZero() && bw.cfg.writeTimeout > 0 {
			deadline = time.Now().Add(bw.cfg.writeTimeout)
		}
		err := bw.c.SetWriteDeadline(deadline)
		if err == nil {
			_, err = bw.c.Write(buf)
		}
		bw.wmu.Unlock()
		nbytes := len(buf)
		putBuf(buf)
		if err != nil {
			bw.stats.dropped.Add(1)
			bw.fail(err)
			return err
		}
		bw.stats.frames.Add(1)
		bw.stats.inline.Add(1)
		bw.stats.bytes.Add(uint64(nbytes))
		return nil
	}
	bw.mu.Unlock()
	return bw.enqueue(buf, deadline)
}

// writeDirect ships one frame synchronously, bypassing the queue — the
// zero-copy path for bodies above the coalesce cutoff. The caller keeps
// ownership of bufs' segments (they are fully written on return).
func (bw *batchWriter) writeDirect(bufs net.Buffers, deadline time.Time) error {
	bw.mu.Lock()
	err := bw.dead
	closing := bw.closing
	bw.mu.Unlock()
	if err != nil {
		return err
	}
	if closing {
		return errWriterClosed
	}
	nbytes := 0
	for _, b := range bufs {
		nbytes += len(b)
	}
	if deadline.IsZero() && bw.cfg.writeTimeout > 0 {
		deadline = time.Now().Add(bw.cfg.writeTimeout)
	}
	bw.wmu.Lock()
	// A failed deadline arm means the socket is already unusable; treat
	// it exactly like a failed write (a partial frame desyncs the stream).
	err = bw.c.SetWriteDeadline(deadline)
	if err == nil {
		_, err = bufs.WriteTo(bw.c)
	}
	bw.wmu.Unlock()
	if err != nil {
		bw.stats.dropped.Add(1)
		bw.fail(err)
		return err
	}
	bw.stats.frames.Add(1)
	bw.stats.direct.Add(1)
	bw.stats.bytes.Add(uint64(nbytes))
	return nil
}

// flushLoop is the single writer goroutine: it drains whatever is queued
// the moment anything is, into one vectored write capped at batchBytes.
func (bw *batchWriter) flushLoop() {
	defer close(bw.done)
	var batch []batchItem
	for {
		bw.mu.Lock()
		for len(bw.queue) == 0 && bw.dead == nil && !bw.closing {
			bw.nonEmpty.Wait()
		}
		if bw.dead != nil {
			bw.releaseLocked()
			bw.mu.Unlock()
			return
		}
		if len(bw.queue) == 0 { // closing with a drained queue: done
			bw.mu.Unlock()
			return
		}
		// Adaptive spin-then-flush: when the submission rate is high
		// (EWMA gap within the spin cap) and the queue is not yet a full
		// batch, linger briefly — yielding the processor so producers
		// run — to let the burst in progress coalesce into this flush.
		// Low-rate and idle connections never reach here with a small
		// EWMA, so they keep the flush-immediately behaviour.
		if bw.spinOK && !bw.closing && bw.qbytes < bw.cfg.batchBytes {
			if ewma := bw.gapEWMA; ewma > 0 && ewma <= bw.cfg.spin {
				window := 8 * ewma
				if window > bw.cfg.spin {
					window = bw.cfg.spin
				}
				startFrames := len(bw.queue)
				limit := time.Now().Add(window)
				for bw.dead == nil && !bw.closing && bw.qbytes < bw.cfg.batchBytes && time.Now().Before(limit) {
					bw.mu.Unlock()
					runtime.Gosched()
					bw.mu.Lock()
				}
				if len(bw.queue) > startFrames {
					bw.stats.spins.Add(1)
				}
				if bw.dead != nil {
					bw.releaseLocked()
					bw.mu.Unlock()
					return
				}
			}
		}
		// Group commit: take everything queued right now, up to the
		// batch cap; the remainder seeds the next flush. At least one
		// frame always moves, so an oversized frame cannot wedge.
		n, nbytes := 0, 0
		for n < len(bw.queue) && (n == 0 || nbytes+len(bw.queue[n].buf) <= bw.cfg.batchBytes) {
			nbytes += len(bw.queue[n].buf)
			n++
		}
		batch = append(batch[:0], bw.queue[:n]...)
		rest := copy(bw.queue, bw.queue[n:])
		for i := rest; i < len(bw.queue); i++ {
			bw.queue[i] = batchItem{}
		}
		bw.queue = bw.queue[:rest]
		bw.qbytes -= nbytes
		bw.stats.qframes.Add(int64(-n))
		bw.stats.qbytes.Add(int64(-nbytes))
		bw.space.Broadcast()
		bw.mu.Unlock()

		// The batch deadline is the earliest frame deadline (a frame that
		// had to be out by T still has to be), else the write timeout.
		vec := make(net.Buffers, len(batch))
		var deadline time.Time
		for i, it := range batch {
			vec[i] = it.buf
			if !it.deadline.IsZero() && (deadline.IsZero() || it.deadline.Before(deadline)) {
				deadline = it.deadline
			}
		}
		if deadline.IsZero() && bw.cfg.writeTimeout > 0 {
			deadline = time.Now().Add(bw.cfg.writeTimeout)
		}
		bw.wmu.Lock()
		err := bw.c.SetWriteDeadline(deadline)
		if err == nil {
			_, err = vec.WriteTo(bw.c)
		}
		bw.wmu.Unlock()
		for _, it := range batch {
			putBuf(it.buf)
		}
		if err != nil {
			bw.stats.dropped.Add(uint64(len(batch)))
			bw.fail(err)
			continue // the next pass sees dead, drains, and exits
		}
		bw.stats.frames.Add(uint64(len(batch)))
		bw.stats.batches.Add(1)
		bw.stats.bytes.Add(uint64(nbytes))
	}
}

// releaseLocked recycles every queued frame; the caller holds bw.mu.
func (bw *batchWriter) releaseLocked() {
	for _, it := range bw.queue {
		putBuf(it.buf)
	}
	bw.stats.dropped.Add(uint64(len(bw.queue)))
	bw.stats.qframes.Add(int64(-len(bw.queue)))
	bw.stats.qbytes.Add(int64(-bw.qbytes))
	bw.queue = nil
	bw.qbytes = 0
	bw.space.Broadcast()
}

// kill poisons the writer: queued frames are dropped and recycled,
// blocked enqueuers fail, and the flusher exits. Idempotent; called by
// the connection owner when the connection dies for any reason.
func (bw *batchWriter) kill(err error) {
	bw.mu.Lock()
	if bw.dead == nil {
		bw.dead = err
	}
	bw.releaseLocked()
	bw.nonEmpty.Signal()
	bw.mu.Unlock()
}

// fail is kill plus the one-time owner notification, for write errors the
// writer itself detects.
func (bw *batchWriter) fail(err error) {
	bw.kill(err)
	if bw.onFail != nil {
		bw.failOnce.Do(func() { bw.onFail(err) })
	}
}

// close flushes whatever is queued, stops the flusher, and waits for it
// to exit; the serving side calls it at connection teardown so responses
// already accepted still go out. Bounded by the write timeout: a peer
// that stops reading fails the final flush rather than wedging teardown.
func (bw *batchWriter) close() {
	bw.mu.Lock()
	bw.closing = true
	bw.nonEmpty.Signal()
	bw.space.Broadcast()
	bw.mu.Unlock()
	<-bw.done
}
