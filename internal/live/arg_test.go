package live

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dm"
	"repro/internal/rpc"
)

func TestMakeArgSizeAware(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)

	small, err := cl.MakeArg(make([]byte, 512), 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.IsRef() {
		t.Fatal("512B inlined arg became a ref at default threshold")
	}
	big, err := cl.MakeArg(make([]byte, 8192), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !big.IsRef() {
		t.Fatal("8KiB arg not staged")
	}
	forced, err := cl.MakeArg([]byte("tiny"), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !forced.IsRef() {
		t.Fatal("negative threshold should force by-reference")
	}
	cl.Release(big)
	cl.Release(forced)
	cl.Release(small) // inline: no-op
}

func TestArgTravelsThroughWire(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	producer := dialClient(t, addr)
	consumer := dialClient(t, addr)

	payload := bytes.Repeat([]byte("wire"), 4096) // 16 KiB
	arg, err := producer.MakeArg(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Embed the Arg in an application message and decode on the other side
	// — identical wire form to the simulated world.
	e := rpc.NewEnc(64)
	arg.Encode(e)
	arg2 := core.DecodeArg(rpc.NewDec(e.Bytes()))

	d, err := consumer.Open(arg2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("consumer read mismatch")
	}
	// Consumer write CoWs; producer snapshot intact.
	if err := d.Write(0, []byte("CLOBBER")); err != nil {
		t.Fatal(err)
	}
	probe := make([]byte, 7)
	if err := producer.ReadRef(arg.Ref(), 0, probe); err != nil {
		t.Fatal(err)
	}
	if string(probe) != "wirewir" {
		t.Fatalf("snapshot mutated: %q", probe)
	}
	// Reads through the written view see the write.
	if err := d.Read(0, probe); err != nil {
		t.Fatal(err)
	}
	if string(probe) != "CLOBBER" {
		t.Fatalf("writer view %q", probe)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Release(arg2); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if srv.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d", srv.LiveRefs())
	}
}

func TestInlineDataIsolated(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	src := []byte("shared-buffer")
	arg, err := cl.MakeArg(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Open(arg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, []byte("MUTATED")); err != nil {
		t.Fatal(err)
	}
	if string(src[:7]) == "MUTATED" {
		t.Fatal("Open aliased the producer's buffer")
	}
	got := make([]byte, 7)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "MUTATED" {
		t.Fatalf("inline view %q", got)
	}
	if d.Size() != int64(len(src)) {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Close(); err != nil { // no mapping: no-op
		t.Fatal(err)
	}
}

func TestDataRangeChecks(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	arg, err := cl.MakeArg(make([]byte, 8192), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cl.Open(arg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Read(8000, make([]byte, 1000)); err != dm.ErrOutOfRange {
		t.Fatalf("read past end: %v", err)
	}
	if err := d.Write(-1, []byte("x")); err != dm.ErrOutOfRange {
		t.Fatalf("negative write: %v", err)
	}
	cl.Release(arg)
}
