// Package workload drives experiments: closed-loop and open-loop (Poisson)
// load generation over simulated processes, with warmup handling, latency
// recording and mixed request types — the machinery behind every
// throughput/latency figure in the paper's evaluation.
package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Op is one request issued by a generator. It runs on a simulated process
// and returns an error on failure (errors are counted, not fatal).
type Op func(p *sim.Proc) error

// Result summarizes a measurement window.
type Result struct {
	// Ops is the number of operations completed inside the window.
	Ops int64
	// Errors is the number of failed operations inside the window.
	Errors int64
	// Window is the measurement duration.
	Window sim.Time
	// Latency holds per-op latencies (ns) recorded inside the window.
	Latency stats.Histogram
	// Offered is the open-loop target rate (0 for closed loop).
	Offered float64
	// Dropped counts open-loop arrivals discarded by the concurrency cap.
	Dropped int64
}

// Throughput returns completed operations per virtual second.
func (r Result) Throughput() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Ops) * float64(sim.Second) / float64(r.Window)
}

func (r Result) String() string {
	return fmt.Sprintf("ops=%d err=%d thr=%s lat{%s}",
		r.Ops, r.Errors, stats.Rate(r.Throughput()), r.Latency.Summarize())
}

// ClosedConfig tunes RunClosed.
type ClosedConfig struct {
	// Clients is the number of concurrent closed-loop issuers.
	Clients int
	// Warmup runs before measurement starts (excluded from results).
	Warmup sim.Time
	// Measure is the measurement window length.
	Measure sim.Time
}

// RunClosed drives op from Clients concurrent processes, each issuing the
// next request as soon as the previous completes. It runs the engine
// through warmup+measure and returns the windowed result. The caller still
// owns engine shutdown.
func RunClosed(eng *sim.Engine, cfg ClosedConfig, op Op) Result {
	if cfg.Clients <= 0 {
		panic("workload: Clients must be positive")
	}
	if cfg.Measure <= 0 {
		panic("workload: Measure must be positive")
	}
	res := Result{Window: cfg.Measure}
	start := eng.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Measure
	for i := 0; i < cfg.Clients; i++ {
		eng.Spawn(fmt.Sprintf("closed-%d", i), func(p *sim.Proc) {
			for {
				t0 := p.Now()
				if t0 >= measureTo {
					return
				}
				err := op(p)
				t1 := p.Now()
				if t1 >= measureFrom && t1 < measureTo {
					if err != nil {
						res.Errors++
					} else {
						res.Ops++
						res.Latency.Record(t1 - t0)
					}
				}
			}
		})
	}
	eng.RunUntil(measureTo)
	return res
}

// OpenConfig tunes RunOpen.
type OpenConfig struct {
	// Rate is the offered load in operations per (virtual) second,
	// Poisson-distributed.
	Rate float64
	// Warmup runs before measurement starts.
	Warmup sim.Time
	// Measure is the measurement window length.
	Measure sim.Time
	// MaxOutstanding caps in-flight operations; arrivals beyond it are
	// dropped (and counted) so an overloaded system cannot spawn unbounded
	// processes. Zero means 4096.
	MaxOutstanding int
	// Drain allows this much extra time after the window for in-flight
	// operations to finish.
	Drain sim.Time
}

// RunOpen offers Poisson arrivals at cfg.Rate, each executing op on its own
// process. Latency is recorded for operations that *arrive* inside the
// measurement window (standard open-loop accounting, so queueing delay
// under overload is visible as tail latency).
func RunOpen(eng *sim.Engine, cfg OpenConfig, op Op) Result {
	if cfg.Rate <= 0 {
		panic("workload: Rate must be positive")
	}
	if cfg.Measure <= 0 {
		panic("workload: Measure must be positive")
	}
	maxOut := cfg.MaxOutstanding
	if maxOut == 0 {
		maxOut = 4096
	}
	drain := cfg.Drain
	if drain == 0 {
		drain = 4 * cfg.Measure
	}
	res := Result{Window: cfg.Measure, Offered: cfg.Rate}
	start := eng.Now()
	measureFrom := start + cfg.Warmup
	measureTo := measureFrom + cfg.Measure
	outstanding := 0
	wg := sim.NewWaitGroup(eng)

	eng.Spawn("open-arrivals", func(p *sim.Proc) {
		rng := eng.Rand()
		for {
			// Exponential inter-arrival for a Poisson process.
			gap := sim.Time(-math.Log(1-rng.Float64()) * float64(sim.Second) / cfg.Rate)
			if gap < 1 {
				gap = 1
			}
			p.Sleep(gap)
			arrive := p.Now()
			if arrive >= measureTo {
				return
			}
			if outstanding >= maxOut {
				if arrive >= measureFrom {
					res.Dropped++
				}
				continue
			}
			outstanding++
			wg.Add(1)
			eng.Spawn("open-op", func(q *sim.Proc) {
				defer func() { outstanding--; wg.Done() }()
				err := op(q)
				if arrive < measureFrom || arrive >= measureTo {
					return
				}
				if err != nil {
					res.Errors++
					return
				}
				res.Ops++
				res.Latency.Record(q.Now() - arrive)
			})
		}
	})
	eng.RunUntil(measureTo + drain)
	return res
}

// CapacityConfig tunes FindCapacity.
type CapacityConfig struct {
	// Lo and Hi bound the search in ops/second; Hi must saturate.
	Lo, Hi float64
	// Tolerance stops the bisection when the bracket is within this
	// fraction of Hi (default 0.05).
	Tolerance float64
	// Open configures each probe run (Rate is overwritten per probe).
	Open OpenConfig
	// LatencyLimit marks a probe saturated when mean latency exceeds it
	// (0 disables the latency criterion; achieved-rate shortfall always
	// counts).
	LatencyLimit sim.Time
}

// FindCapacity bisects offered load to estimate a system's sustainable
// request rate: the highest rate where completions keep up with arrivals
// (and latency stays under LatencyLimit, when set). Because a simulated
// system cannot be reused after saturation, mk must build a fresh system
// per probe and return its engine and workload op; the engine is shut
// down after each probe.
func FindCapacity(cfg CapacityConfig, mk func() (*sim.Engine, Op)) float64 {
	if cfg.Lo <= 0 || cfg.Hi <= cfg.Lo {
		panic("workload: FindCapacity needs 0 < Lo < Hi")
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 0.05
	}
	sustains := func(rate float64) bool {
		eng, op := mk()
		defer eng.Shutdown()
		oc := cfg.Open
		oc.Rate = rate
		r := RunOpen(eng, oc, op)
		if r.Throughput() < 0.9*rate {
			return false
		}
		if cfg.LatencyLimit > 0 && sim.Time(r.Latency.Mean()) > cfg.LatencyLimit {
			return false
		}
		return true
	}
	lo, hi := cfg.Lo, cfg.Hi
	if !sustains(lo) {
		return 0 // even the floor saturates
	}
	if sustains(hi) {
		return hi // ceiling never saturates; caller should widen
	}
	for hi-lo > tol*cfg.Hi {
		mid := (lo + hi) / 2
		if sustains(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted pairs an operation with a selection weight for mixed workloads.
type Weighted struct {
	Weight int
	Op     Op
	Name   string
}

// Mix returns an Op that picks one of the weighted ops per invocation
// using the engine's deterministic PRNG (the DeathStarBench 60/30/10 mix).
func Mix(eng *sim.Engine, ops []Weighted) Op {
	total := 0
	for _, w := range ops {
		if w.Weight <= 0 {
			panic("workload: weights must be positive")
		}
		total += w.Weight
	}
	if total == 0 {
		panic("workload: empty mix")
	}
	return func(p *sim.Proc) error {
		n := eng.Rand().Intn(total)
		for _, w := range ops {
			n -= w.Weight
			if n < 0 {
				return w.Op(p)
			}
		}
		return ops[len(ops)-1].Op(p)
	}
}
