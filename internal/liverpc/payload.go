package liverpc

import (
	"fmt"

	"repro/internal/dm"
	"repro/internal/dmwire"
)

// Payload is a size-aware service-call argument or result: small values
// travel inline inside the call envelope; large values are staged once
// into the DM server pool and flow through the rest of the call chain as
// a ~21-byte Ref descriptor, materialized only where actually consumed
// (paper §IV-B). Payloads are plain values, safe to copy.
type Payload struct {
	isRef    bool
	located  bool
	ref      dm.Ref
	replicas []uint32 // replica-hint shard IDs (replicated located refs)
	inline   []byte
}

// Inline builds a pass-by-value payload. The bytes are aliased, not
// copied; treat them as read-only while the payload is in flight.
func Inline(data []byte) Payload { return Payload{inline: data} }

// ByRef wraps an already-staged Ref as a payload.
func ByRef(ref dm.Ref) Payload { return Payload{isRef: true, ref: ref} }

// ByLocated wraps a cluster-addressed ref (Ref.Server is a shard ID
// from a pool.Client) as a payload; it travels in dmwire's versioned v1
// wire form, so any endpoint sharing the cluster map can resolve it.
func ByLocated(ref dm.Ref) Payload { return Payload{isRef: true, located: true, ref: ref} }

// ByReplicated wraps a cluster-addressed ref together with the shard IDs
// believed to hold its copies (pool.Client.Replicas). It travels in
// dmwire's v2 wire form, so a receiving endpoint can fail a read over to
// a surviving replica even if its own cluster map lags. With fewer than
// two shards it degrades to ByLocated.
func ByReplicated(ref dm.Ref, shards []uint32) Payload {
	if len(shards) < 2 {
		return ByLocated(ref)
	}
	cp := shards
	if len(cp) > dmwire.MaxRefReplicas {
		cp = cp[:dmwire.MaxRefReplicas]
	}
	return Payload{isRef: true, located: true, ref: ref, replicas: append([]uint32(nil), cp...)}
}

// U64 builds an inline payload holding one big-endian uint64 — the
// common shape of small results (counts, ids, aggregates).
func U64(v uint64) Payload {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
	return Inline(b)
}

// AsU64 decodes a U64 payload.
func (p Payload) AsU64() (uint64, error) {
	if p.isRef || len(p.inline) != 8 {
		return 0, fmt.Errorf("liverpc: payload is not a u64")
	}
	var v uint64
	for _, b := range p.inline {
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// IsRef reports whether the payload passes by reference.
func (p Payload) IsRef() bool { return p.isRef }

// Located reports whether a ref payload is cluster-addressed.
func (p Payload) Located() bool { return p.isRef && p.located }

// Replicas returns the replica-hint shard IDs carried by a replicated
// ref payload (nil for unreplicated payloads), aliased.
func (p Payload) Replicas() []uint32 { return p.replicas }

// Ref returns the underlying Ref; valid only when IsRef.
func (p Payload) Ref() dm.Ref { return p.ref }

// Inline returns the inline bytes (nil for ref payloads), aliased.
func (p Payload) Inline() []byte {
	if p.isRef {
		return nil
	}
	return p.inline
}

// Size returns the logical payload length in bytes.
func (p Payload) Size() int64 {
	if p.isRef {
		return p.ref.Size
	}
	return int64(len(p.inline))
}

// WireSize returns how many bytes the payload occupies inside a call
// envelope — the quantity pass-by-reference shrinks from megabytes to
// tens of bytes.
func (p Payload) WireSize() int {
	if len(p.replicas) > 0 {
		return 1 + dmwire.LocatedRefSize + 1 + 4*len(p.replicas)
	}
	if p.located {
		return 1 + dmwire.LocatedRefSize
	}
	if p.isRef {
		return 1 + dm.EncodedRefSize
	}
	return 1 + 4 + len(p.inline)
}

func (p Payload) String() string {
	if len(p.replicas) > 0 {
		return fmt.Sprintf("payload(shards %v %v)", p.replicas, p.ref)
	}
	if p.located {
		return fmt.Sprintf("payload(shard %d %v)", p.ref.Server, p.ref)
	}
	if p.isRef {
		return fmt.Sprintf("payload(%v)", p.ref)
	}
	return fmt.Sprintf("payload(inline %dB)", len(p.inline))
}

// wireArg converts to the envelope codec's descriptor.
func (p Payload) wireArg() dmwire.CallArg {
	if p.isRef {
		return dmwire.CallArg{IsRef: true, Located: p.located, Ref: p.ref, Replicas: p.replicas}
	}
	return dmwire.CallArg{Inline: p.inline}
}

// fromWire converts an envelope descriptor, aliasing inline bytes.
func fromWire(a dmwire.CallArg) Payload {
	if a.IsRef {
		return Payload{isRef: true, located: a.Located, ref: a.Ref, replicas: a.Replicas}
	}
	return Payload{inline: a.Inline}
}

// payloadsToWire converts an argument list for marshalling.
func payloadsToWire(ps []Payload) []dmwire.CallArg {
	if len(ps) == 0 {
		return nil
	}
	args := make([]dmwire.CallArg, len(ps))
	for i, p := range ps {
		args[i] = p.wireArg()
	}
	return args
}

// payloadsFromWire converts a decoded list; when copyInline is set,
// inline bytes are copied out of the (transport-owned, soon-recycled)
// envelope buffer so the payloads may outlive it.
func payloadsFromWire(args []dmwire.CallArg, copyInline bool) []Payload {
	if len(args) == 0 {
		return nil
	}
	ps := make([]Payload, len(args))
	for i, a := range args {
		if copyInline && !a.IsRef {
			a.Inline = append([]byte(nil), a.Inline...)
		}
		ps[i] = fromWire(a)
	}
	return ps
}
