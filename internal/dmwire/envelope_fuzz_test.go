package dmwire

import (
	"bytes"
	"testing"

	"repro/internal/dm"
)

// FuzzCallEnvelope throws arbitrary bodies at the liverpc call- and
// return-envelope decoders: no input may panic, every accepted body must
// re-encode to a prefix-identical wire form (the envelope codec is
// canonical), and decoded envelopes must respect the documented caps.
func FuzzCallEnvelope(f *testing.F) {
	env := CallEnvelope{
		Method:         "chain.do",
		TraceID:        0xabcdef,
		Hop:            2,
		DeadlineMillis: 900,
		Args: []CallArg{
			{Inline: []byte("inline arg")},
			{IsRef: true, Ref: dm.Ref{Server: 1, Key: 99, Size: 1 << 16}},
			{IsRef: true, Located: true, Ref: dm.Ref{Server: 7, Key: 3, Size: 4096}},
		},
	}
	f.Add(uint8(0), env.Marshal())
	f.Add(uint8(0), CallEnvelope{Method: "m"}.Marshal())
	f.Add(uint8(1), ReturnEnvelope{Args: env.Args}.Marshal())
	f.Add(uint8(1), ReturnEnvelope{}.Marshal())
	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		if which%2 == 0 {
			e, err := UnmarshalCallEnvelope(body)
			if err != nil {
				return
			}
			if len(e.Method) > MaxMethodLen || len(e.Args) > MaxCallArgs {
				t.Fatalf("decoded envelope violates caps: method=%d args=%d", len(e.Method), len(e.Args))
			}
			reenc := e.Marshal()
			if len(reenc) > len(body) || !bytes.Equal(reenc, body[:len(reenc)]) {
				t.Fatal("CallEnvelope: accepted body does not round-trip")
			}
			if joined := append(append([]byte(nil), e.MarshalHdr()...), e.Bulk()...); !bytes.Equal(joined, reenc) {
				t.Fatal("CallEnvelope: MarshalHdr+Bulk diverges from Marshal")
			}
			return
		}
		e, err := UnmarshalReturnEnvelope(body)
		if err != nil {
			return
		}
		if len(e.Args) > MaxCallArgs {
			t.Fatalf("decoded return envelope violates caps: args=%d", len(e.Args))
		}
		reenc := e.Marshal()
		if len(reenc) > len(body) || !bytes.Equal(reenc, body[:len(reenc)]) {
			t.Fatal("ReturnEnvelope: accepted body does not round-trip")
		}
	})
}
