package dmnet

import (
	"fmt"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/memsim"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// ServerConfig tunes a DM server.
type ServerConfig struct {
	// Memory describes the pinned disaggregated memory device.
	Memory memsim.Config
	// RPC is the server node configuration. Workers models the CPU cores
	// dispatching DM requests ("Concurrent requests received in a single
	// memory server will be dispatched to its different CPU cores", §VI-C).
	RPC rpc.Config
	// TranslateTime is the software address-translation cost per page
	// lookup in the hash table (§V-A2; the paper measures it at 0.17% of a
	// DM access).
	TranslateTime sim.Time
	// CopyBytesPerSecond is the effective single-core memcpy bandwidth of
	// a DM server core performing page copies (CoW and -copy mode).
	CopyBytesPerSecond int64
	// UnconditionalCopy switches create_ref to the naive copy-the-region
	// behaviour, producing the paper's -copy baselines (Fig 7).
	UnconditionalCopy bool
	// VABase/VALimit bound each process's DM virtual address space.
	VABase, VALimit uint64
}

// DefaultServerConfig sizes a server like one of the paper's DM servers:
// local-DRAM access latency, 4 KiB pages.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Memory: memsim.Config{
			NumPages:       1 << 16, // 256 MiB
			PageSize:       4096,
			AccessLatency:  75, // ns, local DDR
			BytesPerSecond: 76_800_000_000,
		},
		RPC:                rpc.Config{Transport: defaultTransport(), Workers: 1},
		TranslateTime:      20,             // ns hash lookup
		CopyBytesPerSecond: 12_000_000_000, // one core's memcpy rate
		VABase:             1 << 16,
		VALimit:            1 << 40,
	}
}

// Server is a DmRPC-net DM server: page manager + address translator.
type Server struct {
	id   uint32
	node *rpc.Node
	cfg  ServerConfig
	dev  *memsim.Device
	free *memsim.FreeList

	nextPID uint32
	vas     map[uint32]*dm.VAAllocator // per-process VA allocation tree

	// trans is the single in-memory hash table holding all processes'
	// translation entries (§V-A2).
	trans map[transKey]memsim.FrameID

	refs       map[uint64]*refEntry
	nextRefKey uint64

	// Counters for experiment reporting.
	faults    int64
	cowCopies int64
}

type transKey struct {
	pid   uint32
	vpage uint64 // DM virtual address >> page shift (byte addr / page size)
}

type refEntry struct {
	frames []memsim.FrameID
	size   int64
}

// NewServer creates a DM server with identity id on host h, serving on
// port.
func NewServer(h *simnet.Host, port int, id uint32, cfg ServerConfig) *Server {
	s := &Server{
		id:    id,
		node:  rpc.NewNode(h, port, fmt.Sprintf("dmserver-%d", id), cfg.RPC),
		cfg:   cfg,
		dev:   memsim.New(h.Network().Engine(), fmt.Sprintf("dm%d", id), cfg.Memory),
		free:  memsim.NewFreeList(cfg.Memory.NumPages),
		vas:   make(map[uint32]*dm.VAAllocator),
		trans: make(map[transKey]memsim.FrameID),
		refs:  make(map[uint64]*refEntry),
	}
	s.node.Handle(MRegister, s.handleRegister)
	s.node.Handle(MAlloc, s.handleAlloc)
	s.node.Handle(MFree, s.handleFree)
	s.node.Handle(MCreateRef, s.handleCreateRef)
	s.node.Handle(MMapRef, s.handleMapRef)
	s.node.Handle(MFreeRef, s.handleFreeRef)
	s.node.Handle(MRead, s.handleRead)
	s.node.Handle(MWrite, s.handleWrite)
	s.node.Handle(MStage, s.handleStage)
	s.node.Handle(MReadRef, s.handleReadRef)
	return s
}

// Start launches the server's RPC stack.
func (s *Server) Start() { s.node.Start() }

// Addr returns the server's RPC address.
func (s *Server) Addr() simnet.Addr { return s.node.Addr() }

// ID returns the server's pool identity.
func (s *Server) ID() uint32 { return s.id }

// Device exposes the underlying memory device for traffic accounting in
// experiments.
func (s *Server) Device() *memsim.Device { return s.dev }

// FreePages returns the number of frames on the free FIFO.
func (s *Server) FreePages() int { return s.free.Len() }

// Faults returns how many page faults (first-write allocations) occurred.
func (s *Server) Faults() int64 { return s.faults }

// CoWCopies returns how many copy-on-write page copies occurred.
func (s *Server) CoWCopies() int64 { return s.cowCopies }

// LiveRefs returns the number of outstanding Refs.
func (s *Server) LiveRefs() int { return len(s.refs) }

func (s *Server) pageSize() int64 { return int64(s.cfg.Memory.PageSize) }

// --- handlers ---

func (s *Server) handleRegister(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	pid := s.nextPID
	s.nextPID++
	s.vas[pid] = dm.NewVAAllocator(s.cfg.Memory.PageSize, s.cfg.VABase, s.cfg.VALimit)
	return dmwire.RegisterResp{PID: pid}.Marshal(), nil
}

func (s *Server) va(pid uint32) (*dm.VAAllocator, error) {
	va, ok := s.vas[pid]
	if !ok {
		return nil, dm.ErrBadAddress
	}
	return va, nil
}

func (s *Server) handleAlloc(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalAllocReq(body)
	if err != nil {
		return nil, err
	}
	pid, size := req.PID, req.Size
	va, err := s.va(pid)
	if err != nil {
		return nil, toAppError(err)
	}
	// The VA tree lookup is the only work: pages are allocated lazily on
	// first write ("When the process first writes to a DM virtual address,
	// a page fault would be triggered", §V-A1).
	ctx.P.Sleep(s.cfg.TranslateTime)
	addr, err := va.Alloc(size)
	if err != nil {
		return nil, toAppError(err)
	}
	return dmwire.AllocResp{Addr: addr}.Marshal(), nil
}

func (s *Server) handleFree(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeReq(body)
	if err != nil {
		return nil, err
	}
	pid, addr := req.PID, req.Addr
	va, err := s.va(pid)
	if err != nil {
		return nil, toAppError(err)
	}
	size, err := va.Free(addr)
	if err != nil {
		return nil, toAppError(err)
	}
	pages := dm.PageCount(size, s.cfg.Memory.PageSize)
	if pages == 0 {
		pages = 1 // zero-size regions still own one VA page
	}
	base := uint64(addr) / uint64(s.pageSize())
	var held []memsim.FrameID
	for i := 0; i < pages; i++ {
		key := transKey{pid: pid, vpage: base + uint64(i)}
		f, ok := s.trans[key]
		if !ok {
			continue // never materialized
		}
		ctx.P.Sleep(s.cfg.TranslateTime)
		delete(s.trans, key)
		held = append(held, f)
	}
	counts := s.dev.AddRefBatch(ctx.P, held, -1)
	for i, f := range held {
		if counts[i] == 0 {
			s.free.Push(f)
		}
	}
	return nil, nil
}

// materialize returns the frame backing (pid, vpage), allocating and
// mapping a fresh zeroed frame on first touch (the page-fault path).
func (s *Server) materialize(p *sim.Proc, key transKey) (memsim.FrameID, error) {
	p.Sleep(s.cfg.TranslateTime)
	if f, ok := s.trans[key]; ok {
		return f, nil
	}
	f, ok := s.free.Pop()
	if !ok {
		return memsim.NoFrame, dm.ErrOutOfMemory
	}
	s.faults++
	s.dev.ZeroFrame(p, f)
	s.dev.SetRef(f, 1)
	s.trans[key] = f
	return f, nil
}

// checkRange validates that [addr, addr+size) lies inside one allocated
// region of pid's address space and returns the region's first vpage.
func (s *Server) checkRange(pid uint32, addr dm.RemoteAddr, size int64) error {
	va, err := s.va(pid)
	if err != nil {
		return err
	}
	base, regSize, err := va.Lookup(addr)
	if err != nil {
		return err
	}
	// Accesses may extend into the page-rounded extent but not past it;
	// match a real allocator's page-granular protection.
	extent := int64(dm.PageCount(regSize, s.cfg.Memory.PageSize)) * s.pageSize()
	if extent == 0 {
		extent = s.pageSize()
	}
	if int64(addr)-int64(base)+size > extent {
		return dm.ErrOutOfRange
	}
	return nil
}

func (s *Server) handleCreateRef(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalCreateRefReq(body)
	if err != nil {
		return nil, err
	}
	pid, addr, size := req.PID, req.Addr, req.Size
	if size <= 0 {
		return nil, toAppError(dm.ErrOutOfRange)
	}
	if err := s.checkRange(pid, addr, size); err != nil {
		return nil, toAppError(err)
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	pages := dm.PageCount(int64(uint64(addr)%uint64(s.pageSize()))+size, s.cfg.Memory.PageSize)
	src := make([]memsim.FrameID, 0, pages)
	for i := 0; i < pages; i++ {
		key := transKey{pid: pid, vpage: basePage + uint64(i)}
		f, err := s.materialize(ctx.P, key)
		if err != nil {
			return nil, toAppError(err)
		}
		src = append(src, f)
	}
	var frames []memsim.FrameID
	if s.cfg.UnconditionalCopy {
		// Naive decoupling: physically copy every page so the ref owns a
		// private snapshot (the -copy baselines of Fig 7). The copy runs
		// at one server core's memcpy rate.
		frames = make([]memsim.FrameID, 0, pages)
		for range src {
			nf, ok := s.free.Pop()
			if !ok {
				s.free.PushAll(frames)
				return nil, toAppError(dm.ErrOutOfMemory)
			}
			frames = append(frames, nf)
		}
		s.dev.CopyFramesCPU(ctx.P, frames, src, s.cfg.CopyBytesPerSecond)
		for _, nf := range frames {
			s.dev.SetRef(nf, 1)
		}
	} else {
		// Copy-on-write: the ref just takes a (batched, pipelined)
		// reference on every page; the refcount > 1 condition is what
		// makes the region effectively read-only for every sharer
		// including the creator (§V-A1).
		s.dev.AddRefBatch(ctx.P, src, 1)
		frames = src
	}
	key := s.nextRefKey
	s.nextRefKey++
	s.refs[key] = &refEntry{frames: frames, size: size}
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

func (s *Server) handleMapRef(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalMapRefReq(body)
	if err != nil {
		return nil, err
	}
	pid, key := req.PID, req.Key
	va, err := s.va(pid)
	if err != nil {
		return nil, toAppError(err)
	}
	ref, ok := s.refs[key]
	if !ok {
		return nil, toAppError(dm.ErrBadRef)
	}
	addr, err := va.Alloc(ref.size)
	if err != nil {
		return nil, toAppError(err)
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	for i, f := range ref.frames {
		ctx.P.Sleep(s.cfg.TranslateTime)
		s.trans[transKey{pid: pid, vpage: basePage + uint64(i)}] = f
	}
	s.dev.AddRefBatch(ctx.P, ref.frames, 1)
	return dmwire.MapRefResp{Addr: addr, Size: ref.size}.Marshal(), nil
}

func (s *Server) handleFreeRef(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeRefReq(body)
	if err != nil {
		return nil, err
	}
	key := req.Key
	ref, ok := s.refs[key]
	if !ok {
		return nil, toAppError(dm.ErrBadRef)
	}
	delete(s.refs, key)
	counts := s.dev.AddRefBatch(ctx.P, ref.frames, -1)
	for i, f := range ref.frames {
		if counts[i] == 0 {
			s.free.Push(f)
		}
	}
	return nil, nil
}

func (s *Server) handleRead(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadReq(body)
	if err != nil {
		return nil, err
	}
	pid, addr, size := req.PID, req.Addr, int64(req.Size)
	if err := s.checkRange(pid, addr, size); err != nil {
		return nil, toAppError(err)
	}
	out := make([]byte, size)
	off := int64(0)
	for off < size {
		vpage := (uint64(addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		ctx.P.Sleep(s.cfg.TranslateTime)
		f, mapped := s.trans[transKey{pid: pid, vpage: vpage}]
		if mapped {
			// "it directly returns the content in the pinned pages without
			// checking the reference count" (§V-A2).
			s.dev.Read(ctx.P, f, int(pageOff), out[off:off+n])
		}
		// Unmapped pages read as zeros without allocating.
		off += n
	}
	return out, nil
}

func (s *Server) handleWrite(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalWriteReq(body)
	if err != nil {
		return nil, err
	}
	pid, addr, data := req.PID, req.Addr, req.Data
	size := int64(len(data))
	if err := s.checkRange(pid, addr, size); err != nil {
		return nil, toAppError(err)
	}
	off := int64(0)
	for off < size {
		vpage := (uint64(addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		f, err := s.writableFrame(ctx.P, transKey{pid: pid, vpage: vpage})
		if err != nil {
			return nil, toAppError(err)
		}
		s.dev.Write(ctx.P, f, int(pageOff), data[off:off+n])
		off += n
	}
	return nil, nil
}

// handleStage implements the fused staging fast path: allocate fresh
// frames for the payload, fill them, and return a ref holding them — no VA
// region, no extra round trips. Equivalent (including refcounts) to
// ralloc+rwrite+create_ref+rfree.
func (s *Server) handleStage(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalStageReq(body)
	if err != nil {
		return nil, err
	}
	data := req.Data // staging is per-ref; the PID is accepted but unused
	if len(data) == 0 {
		return nil, toAppError(dm.ErrOutOfRange)
	}
	pages := dm.PageCount(int64(len(data)), s.cfg.Memory.PageSize)
	frames := make([]memsim.FrameID, 0, pages)
	for i := 0; i < pages; i++ {
		f, ok := s.free.Pop()
		if !ok {
			// Roll back partial allocation.
			for _, g := range frames {
				s.free.Push(g)
			}
			return nil, toAppError(dm.ErrOutOfMemory)
		}
		s.faults++
		lo := i * s.cfg.Memory.PageSize
		hi := lo + s.cfg.Memory.PageSize
		if hi > len(data) {
			hi = len(data)
		}
		s.dev.Write(ctx.P, f, 0, data[lo:hi])
		s.dev.SetRef(f, 1)
		frames = append(frames, f)
	}
	key := s.nextRefKey
	s.nextRefKey++
	s.refs[key] = &refEntry{frames: frames, size: int64(len(data))}
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

// handleReadRef serves reads straight through a ref key: translation is a
// single ref-map lookup instead of per-page hash probes.
func (s *Server) handleReadRef(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadRefReq(body)
	if err != nil {
		return nil, err
	}
	key, off, size := req.Key, int64(req.Off), int64(req.Size)
	ref, ok := s.refs[key]
	if !ok {
		return nil, toAppError(dm.ErrBadRef)
	}
	if off < 0 || size < 0 || off+size > ref.size {
		return nil, toAppError(dm.ErrOutOfRange)
	}
	ctx.P.Sleep(s.cfg.TranslateTime)
	out := make([]byte, size)
	pos := int64(0)
	for pos < size {
		page := int((off + pos) / s.pageSize())
		pageOff := (off + pos) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-pos {
			n = size - pos
		}
		s.dev.Read(ctx.P, ref.frames[page], int(pageOff), out[pos:pos+n])
		pos += n
	}
	return out, nil
}

// CheckInvariants validates the page manager's bookkeeping:
//
//  1. every frame's device refcount equals the number of translation
//     entries pointing at it plus the number of refs holding it;
//  2. no frame is both free and referenced;
//  3. free + live frames account for every frame exactly once.
//
// It exists for tests and property checks; it is O(pages) and takes no
// simulated time.
func (s *Server) CheckInvariants() error {
	holds := make(map[memsim.FrameID]int32)
	for _, f := range s.trans {
		holds[f]++
	}
	for _, ref := range s.refs {
		for _, f := range ref.frames {
			holds[f]++
		}
	}
	for f, want := range holds {
		if got := s.dev.RefCount(f); got != want {
			return fmt.Errorf("frame %d refcount %d, want %d holds", f, got, want)
		}
	}
	free := make(map[memsim.FrameID]bool)
	freeN := s.free.Len()
	for _, f := range s.free.PopN(freeN) {
		if free[f] {
			return fmt.Errorf("frame %d on free list twice", f)
		}
		free[f] = true
		s.free.Push(f)
	}
	for f := range holds {
		if free[f] {
			return fmt.Errorf("frame %d is both free and referenced", f)
		}
		if got := s.dev.RefCount(f); got == 0 {
			return fmt.Errorf("live frame %d has zero refcount", f)
		}
	}
	if len(free)+len(holds) != s.cfg.Memory.NumPages {
		return fmt.Errorf("frames leak: %d free + %d live != %d total",
			len(free), len(holds), s.cfg.Memory.NumPages)
	}
	return nil
}

// writableFrame returns a frame the caller may write through (pid, vpage),
// running the copy-on-write protocol of §V-A2: if the page is shared
// (refcount > 1), pop a fresh page, copy, drop one reference on the old
// page and retarget the translation entry.
func (s *Server) writableFrame(p *sim.Proc, key transKey) (memsim.FrameID, error) {
	f, err := s.materialize(p, key)
	if err != nil {
		return memsim.NoFrame, err
	}
	if s.dev.LoadRef(p, f) > 1 {
		nf, ok := s.free.Pop()
		if !ok {
			return memsim.NoFrame, dm.ErrOutOfMemory
		}
		s.cowCopies++
		s.dev.CopyFramesCPU(p, []memsim.FrameID{nf}, []memsim.FrameID{f}, s.cfg.CopyBytesPerSecond)
		s.dev.AddRef(p, f, -1)
		s.dev.SetRef(nf, 1)
		s.trans[key] = nf
		f = nf
	}
	return f, nil
}
