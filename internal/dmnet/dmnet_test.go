package dmnet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dm"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// rig wires n DM servers and two client processes on separate hosts.
type rig struct {
	eng     *sim.Engine
	net     *simnet.Network
	servers []*Server
	addrs   []simnet.Addr
	c1, c2  *Client
}

func newRig(t *testing.T, seed int64, numServers int, mutate func(*ServerConfig)) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	net := simnet.New(eng, simnet.DefaultConfig())
	r := &rig{eng: eng, net: net}
	for i := 0; i < numServers; i++ {
		cfg := DefaultServerConfig()
		cfg.Memory.NumPages = 64
		if mutate != nil {
			mutate(&cfg)
		}
		srv := NewServer(net.AddHost("dmserver"), 1, uint32(i), cfg)
		srv.Start()
		r.servers = append(r.servers, srv)
		r.addrs = append(r.addrs, srv.Addr())
	}
	n1 := rpc.NewNode(net.AddHost("app1"), 1, "app1", rpc.DefaultConfig())
	n1.Start()
	n2 := rpc.NewNode(net.AddHost("app2"), 1, "app2", rpc.DefaultConfig())
	n2.Start()
	r.c1 = NewClient(n1, r.addrs)
	r.c2 = NewClient(n2, r.addrs)
	return r
}

// run executes fn as a simulated process and drives the engine to
// completion, failing the test on any error fn reports.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	r.eng.Spawn("test", func(p *sim.Proc) {
		if e := r.c1.Register(p); e != nil {
			err = e
			return
		}
		if e := r.c2.Register(p); e != nil {
			err = e
			return
		}
		err = fn(p)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
}

func (r *rig) checkInvariants(t *testing.T) {
	t.Helper()
	for i, s := range r.servers {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
}

func TestAllocWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 10000)
		if err != nil {
			return err
		}
		msg := bytes.Repeat([]byte("dmrpc!"), 1000)
		if err := r.c1.Write(p, addr, msg); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if err := r.c1.Read(p, addr, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Error("read back differs")
		}
		return r.c1.Free(p, addr)
	})
	r.checkInvariants(t)
}

func TestLazyAllocationNoPagesUntilWrite(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	srv := r.servers[0]
	start := srv.FreePages()
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 8*4096)
		if err != nil {
			return err
		}
		if srv.FreePages() != start {
			t.Errorf("alloc consumed %d pages before any write", start-srv.FreePages())
		}
		if err := r.c1.Write(p, addr, []byte("x")); err != nil {
			return err
		}
		if srv.FreePages() != start-1 {
			t.Errorf("first write should fault exactly 1 page, free went %d -> %d", start, srv.FreePages())
		}
		if srv.Faults() != 1 {
			t.Errorf("Faults = %d", srv.Faults())
		}
		return nil
	})
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 4096)
		if err != nil {
			return err
		}
		got := make([]byte, 128)
		got[0] = 0xFF
		if err := r.c1.Read(p, addr, got); err != nil {
			return err
		}
		for i, b := range got {
			if b != 0 {
				t.Errorf("byte %d = %d, want 0", i, b)
				break
			}
		}
		return nil
	})
}

func TestOffsetReadWriteWithinRegion(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 3*4096)
		if err != nil {
			return err
		}
		// Write straddling a page boundary.
		if err := r.c1.Write(p, addr.Add(4000), []byte("straddle")); err != nil {
			return err
		}
		got := make([]byte, 8)
		if err := r.c1.Read(p, addr.Add(4000), got); err != nil {
			return err
		}
		if string(got) != "straddle" {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestShareViaRef(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 8192)
		if err != nil {
			return err
		}
		if err := r.c1.Write(p, addr, []byte("shared-content")); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 8192)
		if err != nil {
			return err
		}
		// Ref travels by value (e.g. inside an RPC argument).
		ref2, err := dm.UnmarshalRef(ref.Marshal())
		if err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref2)
		if err != nil {
			return err
		}
		got := make([]byte, 14)
		if err := r.c2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "shared-content" {
			t.Errorf("consumer read %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestCoWIsolationBetweenSharers(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.c1.Alloc(p, 4096)
		if err := r.c1.Write(p, addr, []byte("original")); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		// Consumer writes: must trigger CoW, leaving the creator's view
		// untouched.
		if err := r.c2.Write(p, mapped, []byte("CLOBBER!")); err != nil {
			return err
		}
		got1 := make([]byte, 8)
		if err := r.c1.Read(p, addr, got1); err != nil {
			return err
		}
		if string(got1) != "original" {
			t.Errorf("creator sees %q after consumer write", got1)
		}
		got2 := make([]byte, 8)
		if err := r.c2.Read(p, mapped, got2); err != nil {
			return err
		}
		if string(got2) != "CLOBBER!" {
			t.Errorf("consumer sees %q after own write", got2)
		}
		if r.servers[0].CoWCopies() != 1 {
			t.Errorf("CoWCopies = %d, want 1", r.servers[0].CoWCopies())
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestCreatorWriteAfterCreateRefAlsoCoWs(t *testing.T) {
	// "The memory region would be marked as read-only, any writes would
	// trigger copy-on-write" — including the creator's own writes.
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.c1.Alloc(p, 4096)
		if err := r.c1.Write(p, addr, []byte("original")); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		if err := r.c1.Write(p, addr, []byte("mutated!")); err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 8)
		if err := r.c2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "original" {
			t.Errorf("ref content %q changed by creator's post-ref write", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestPageGranularCoWOnlyCopiesWrittenPages(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	srv := r.servers[0]
	r.run(t, func(p *sim.Proc) error {
		const pages = 8
		addr, _ := r.c1.Alloc(p, pages*4096)
		if err := r.c1.Write(p, addr, make([]byte, pages*4096)); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, pages*4096)
		if err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		// Write only 2 of the 8 pages.
		if err := r.c2.Write(p, mapped, []byte("a")); err != nil {
			return err
		}
		if err := r.c2.Write(p, mapped.Add(3*4096), []byte("b")); err != nil {
			return err
		}
		if srv.CoWCopies() != 2 {
			t.Errorf("CoWCopies = %d, want 2 ('Pages that have not been written would not be copied')", srv.CoWCopies())
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestFullLifecycleNoPageLeak(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	srv := r.servers[0]
	start := srv.FreePages()
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.c1.Alloc(p, 3*4096)
		if err := r.c1.Write(p, addr, make([]byte, 3*4096)); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 3*4096)
		if err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		if err := r.c2.Write(p, mapped, []byte("cow")); err != nil { // one CoW copy
			return err
		}
		if err := r.c1.Free(p, addr); err != nil {
			return err
		}
		if err := r.c2.Free(p, mapped); err != nil {
			return err
		}
		if err := r.c1.FreeRef(p, ref); err != nil {
			return err
		}
		return nil
	})
	if got := srv.FreePages(); got != start {
		t.Fatalf("page leak: %d free, started with %d", got, start)
	}
	if srv.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d", srv.LiveRefs())
	}
	r.checkInvariants(t)
}

func TestUnconditionalCopyMode(t *testing.T) {
	r := newRig(t, 1, 1, func(c *ServerConfig) { c.UnconditionalCopy = true })
	srv := r.servers[0]
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.c1.Alloc(p, 4*4096)
		if err := r.c1.Write(p, addr, bytes.Repeat([]byte("z"), 4*4096)); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 4*4096)
		if err != nil {
			return err
		}
		// -copy mode physically copies every page at create_ref time.
		if got := srv.Device().Traffic().PageCopies; got != 4 {
			t.Errorf("PageCopies = %d, want 4", got)
		}
		// The copy decouples creator and consumer without CoW: creator
		// writes do not disturb the snapshot.
		if err := r.c1.Write(p, addr, []byte("mutated")); err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 4)
		if err := r.c2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "zzzz" {
			t.Errorf("snapshot content %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestRoundRobinAcrossServers(t *testing.T) {
	r := newRig(t, 1, 3, nil)
	r.run(t, func(p *sim.Proc) error {
		var servers []int
		for i := 0; i < 6; i++ {
			addr, err := r.c1.Alloc(p, 100)
			if err != nil {
				return err
			}
			idx, _ := splitAddr(addr)
			servers = append(servers, idx)
		}
		want := []int{0, 1, 2, 0, 1, 2}
		for i := range want {
			if servers[i] != want[i] {
				t.Fatalf("allocation servers %v, want %v", servers, want)
			}
		}
		return nil
	})
}

func TestCrossServerRefRouting(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	r.run(t, func(p *sim.Proc) error {
		// Allocate twice so the second lands on server 1.
		a0, _ := r.c1.Alloc(p, 4096)
		a1, _ := r.c1.Alloc(p, 4096)
		_ = a0
		if err := r.c1.Write(p, a1, []byte("on-server-1")); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, a1, 4096)
		if err != nil {
			return err
		}
		if ref.Server != 1 {
			t.Fatalf("ref.Server = %d, want 1", ref.Server)
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 11)
		if err := r.c2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "on-server-1" {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestErrorPaths(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		// Free of never-allocated address.
		if err := r.c1.Free(p, tagAddr(0, 0x5000)); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("Free bad addr: %v", err)
		}
		// Map of unknown ref.
		if _, err := r.c1.MapRef(p, dm.Ref{Server: 0, Key: 999, Size: 10}); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("MapRef unknown: %v", err)
		}
		// Ref to out-of-pool server.
		if _, err := r.c1.MapRef(p, dm.Ref{Server: 9, Key: 0, Size: 10}); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("MapRef bad server: %v", err)
		}
		// Read past region end.
		addr, _ := r.c1.Alloc(p, 100)
		big := make([]byte, 8192)
		if err := r.c1.Read(p, addr, big); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("Read out of range: %v", err)
		}
		// CreateRef with bad size.
		if _, err := r.c1.CreateRef(p, addr, 0); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("CreateRef zero size: %v", err)
		}
		// Double free of a ref.
		ref, err := r.c1.CreateRef(p, addr, 100)
		if err != nil {
			return err
		}
		if err := r.c1.FreeRef(p, ref); err != nil {
			return err
		}
		if err := r.c1.FreeRef(p, ref); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("double FreeRef: %v", err)
		}
		return nil
	})
}

func TestOutOfMemory(t *testing.T) {
	r := newRig(t, 1, 1, func(c *ServerConfig) { c.Memory.NumPages = 2 })
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 3*4096)
		if err != nil {
			return err // VA space is fine; pages are the limit
		}
		err = r.c1.Write(p, addr, make([]byte, 3*4096))
		if !errors.Is(err, dm.ErrOutOfMemory) {
			t.Errorf("err = %v, want ErrOutOfMemory", err)
		}
		return nil
	})
}

func TestUnregisteredClientRejected(t *testing.T) {
	r := newRig(t, 1, 1, nil)
	var err error
	r.eng.Spawn("test", func(p *sim.Proc) {
		_, err = r.c1.Alloc(p, 100)
	})
	r.eng.Run()
	r.eng.Shutdown()
	if err == nil {
		t.Fatal("Alloc before Register succeeded")
	}
}

func TestStageRefAndReadRef(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	srv := r.servers[0]
	start := srv.FreePages()
	r.run(t, func(p *sim.Proc) error {
		data := bytes.Repeat([]byte("stagedbytes!"), 1000) // ~12KB, 3 pages
		ref, err := r.c1.StageRef(p, data)
		if err != nil {
			return err
		}
		if ref.Size != int64(len(data)) {
			t.Errorf("ref.Size = %d", ref.Size)
		}
		// Windowed read through the ref, no mapping.
		got := make([]byte, 100)
		if err := r.c2.ReadRef(p, ref, 5000, got); err != nil {
			return err
		}
		if !bytes.Equal(got, data[5000:5100]) {
			t.Error("readref window corrupted")
		}
		// A stale ref after FreeRef must be rejected, and pages reclaimed.
		if err := r.c1.FreeRef(p, ref); err != nil {
			return err
		}
		if err := r.c2.ReadRef(p, ref, 0, got); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("stale readref: %v", err)
		}
		// Error paths.
		if _, err := r.c1.StageRef(p, nil); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("empty stage: %v", err)
		}
		ref2, err := r.c1.StageRef(p, []byte("xy"))
		if err != nil {
			return err
		}
		if err := r.c1.ReadRef(p, ref2, 1, make([]byte, 5)); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("readref past end: %v", err)
		}
		return r.c1.FreeRef(p, ref2)
	})
	if got := srv.FreePages(); got != start {
		t.Fatalf("stage pages leaked: %d free, started %d", got, start)
	}
	r.checkInvariants(t)
}

func TestStageRoundRobins(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	r.run(t, func(p *sim.Proc) error {
		a, err := r.c1.StageRef(p, []byte("one"))
		if err != nil {
			return err
		}
		b, err := r.c1.StageRef(p, []byte("two"))
		if err != nil {
			return err
		}
		if a.Server != 0 || b.Server != 1 {
			t.Errorf("stage servers %d,%d, want 0,1", a.Server, b.Server)
		}
		return nil
	})
}

func TestServerID(t *testing.T) {
	r := newRig(t, 1, 2, nil)
	if r.servers[0].ID() != 0 || r.servers[1].ID() != 1 {
		t.Fatal("server IDs wrong")
	}
}

// TestAlternatePageSize exercises the paper's "the page size is
// changeable" claim: the full share/CoW flow must work at 16 KiB pages.
func TestAlternatePageSize(t *testing.T) {
	r := newRig(t, 1, 1, func(c *ServerConfig) {
		c.Memory.PageSize = 16384
		c.Memory.NumPages = 32
	})
	srv := r.servers[0]
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.c1.Alloc(p, 3*16384)
		if err != nil {
			return err
		}
		if err := r.c1.Write(p, addr, bytes.Repeat([]byte("p"), 3*16384)); err != nil {
			return err
		}
		ref, err := r.c1.CreateRef(p, addr, 3*16384)
		if err != nil {
			return err
		}
		mapped, err := r.c2.MapRef(p, ref)
		if err != nil {
			return err
		}
		// One write in the middle page: exactly one 16 KiB CoW copy.
		if err := r.c2.Write(p, mapped.Add(20000), []byte("x")); err != nil {
			return err
		}
		if srv.CoWCopies() != 1 {
			t.Errorf("CoWCopies = %d, want 1", srv.CoWCopies())
		}
		got := make([]byte, 1)
		if err := r.c1.Read(p, addr.Add(20000), got); err != nil {
			return err
		}
		if got[0] != 'p' {
			t.Errorf("creator view changed: %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

// TestRandomOpsAgainstModel drives random DM operations from two clients
// against a pure-Go model of expected region contents and checks reads and
// the server's internal invariants at every step.
func TestRandomOpsAgainstModel(t *testing.T) {
	prop := func(seed int64) bool {
		r := newRig(t, seed, 2, func(c *ServerConfig) { c.Memory.NumPages = 256 })
		rng := rand.New(rand.NewSource(seed))
		type region struct {
			owner *Client
			addr  dm.RemoteAddr
			size  int64
			want  []byte
		}
		type liveRef struct {
			ref  dm.Ref
			want []byte
		}
		var regions []*region
		var refs []liveRef
		ok := true
		fail := func(msg string, args ...any) {
			if ok {
				t.Logf("seed %d: "+msg, append([]any{seed}, args...)...)
			}
			ok = false
		}
		clients := []*Client{r.c1, r.c2}
		r.run(t, func(p *sim.Proc) error {
			for step := 0; step < 120 && ok; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // alloc
					c := clients[rng.Intn(2)]
					size := int64(rng.Intn(5*4096) + 1)
					addr, err := c.Alloc(p, size)
					if err != nil {
						continue
					}
					regions = append(regions, &region{owner: c, addr: addr, size: size, want: make([]byte, size)})
				case op < 6 && len(regions) > 0: // write
					reg := regions[rng.Intn(len(regions))]
					if reg.size == 0 {
						continue
					}
					off := int64(rng.Intn(int(reg.size)))
					n := int64(rng.Intn(int(reg.size-off)) + 1)
					buf := make([]byte, n)
					rng.Read(buf)
					if err := reg.owner.Write(p, reg.addr.Add(off), buf); err != nil {
						fail("write: %v", err)
						continue
					}
					copy(reg.want[off:], buf)
				case op < 8 && len(regions) > 0: // read & verify
					reg := regions[rng.Intn(len(regions))]
					if reg.size == 0 {
						continue
					}
					off := int64(rng.Intn(int(reg.size)))
					n := int64(rng.Intn(int(reg.size-off)) + 1)
					got := make([]byte, n)
					if err := reg.owner.Read(p, reg.addr.Add(off), got); err != nil {
						fail("read: %v", err)
						continue
					}
					if !bytes.Equal(got, reg.want[off:off+n]) {
						fail("step %d: read mismatch at off %d len %d", step, off, n)
					}
				case op == 8 && len(regions) > 0: // create_ref + map at other client
					i := rng.Intn(len(regions))
					reg := regions[i]
					ref, err := reg.owner.CreateRef(p, reg.addr, reg.size)
					if err != nil {
						continue
					}
					snapshot := make([]byte, reg.size)
					copy(snapshot, reg.want)
					refs = append(refs, liveRef{ref: ref, want: snapshot})
					other := clients[0]
					if reg.owner == clients[0] {
						other = clients[1]
					}
					mapped, err := other.MapRef(p, ref)
					if err != nil {
						fail("mapref: %v", err)
						continue
					}
					// The mapping needs its own model buffer: a write
					// through it CoWs and must not affect the ref snapshot.
					mappedWant := make([]byte, len(snapshot))
					copy(mappedWant, snapshot)
					regions = append(regions, &region{owner: other, addr: mapped, size: reg.size, want: mappedWant})
				case op == 9 && len(regions) > 0: // free a region
					i := rng.Intn(len(regions))
					reg := regions[i]
					if err := reg.owner.Free(p, reg.addr); err != nil {
						fail("free: %v", err)
					}
					regions = append(regions[:i], regions[i+1:]...)
				}
				for si, s := range r.servers {
					if err := s.CheckInvariants(); err != nil {
						fail("step %d server %d: %v", step, si, err)
					}
				}
			}
			// Ref snapshots must still read back intact through a fresh map.
			for _, lr := range refs {
				mapped, err := r.c2.MapRef(p, lr.ref)
				if err != nil {
					fail("final mapref: %v", err)
					continue
				}
				got := make([]byte, lr.ref.Size)
				if err := r.c2.Read(p, mapped, got); err != nil {
					fail("final read: %v", err)
					continue
				}
				if !bytes.Equal(got, lr.want) {
					fail("ref snapshot mutated")
				}
			}
			return nil
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
