// Package pool is the sharded DM cluster layer: it routes the live DM
// protocol across N dmserverd instances through a consistent-hash ring,
// makes refs location-aware (dmwire's versioned v1 codec, whose Server
// field carries a cluster-wide shard ID), and multiplexes one
// live.Client per shard so every session keeps the single-server
// lease/heartbeat/retry/dedup machinery it already has. Per-shard
// session health drives failover: a shard whose heartbeats keep failing
// is ejected from the ring for NEW placements while refs it already
// holds keep resolving until the server's lease reaper reclaims them.
//
// With ReplicaFactor R > 1 the pool also replicates: each staged payload
// lands on the R distinct ring successors of its placement point under
// one pool-minted cluster key, reads fail over across replicas, and a
// background repairer re-replicates under-replicated refs after an
// ejection and re-homes them when a shard rejoins (replica.go,
// DESIGN.md §D13). Page migration for Alloc'd regions remains out of
// scope — a region's pages live on the shard that allocated them.
package pool

import (
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per shard. More vnodes smooth
// the key distribution (imbalance shrinks roughly with 1/sqrt(vnodes))
// at the cost of a longer sorted point array.
const DefaultVnodes = 128

// mix is the splitmix64 finalizer: a fast, deterministic 64-bit mixer
// with full avalanche, used for both ring points and op keys so ring
// placement is reproducible across processes and test runs (no seed, no
// map-order dependence).
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a position on the hash circle owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard uint32
}

// Ring is a consistent-hash ring over shard IDs. Lookups walk clockwise
// from the key's hash to the next virtual node; adding or removing one
// shard remaps only the key ranges adjacent to its vnodes (~1/K of the
// keyspace), which is the property that keeps existing placements stable
// as the cluster changes. Safe for concurrent use.
type Ring struct {
	vnodes int
	mu     sync.RWMutex
	points []ringPoint // sorted by (hash, shard)
	member map[uint32]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// shard (<= 0 uses DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, member: make(map[uint32]struct{})}
}

// pointSalt domain-separates vnode hashes from key hashes. Without it,
// shard 0's vnode positions are mix(v) — exactly the lookup hashes of
// keys 0..vnodes-1 — and sort.Search's >= comparison would pin every
// small key onto shard 0's own points.
const pointSalt = 0x7B9F2D4E8C1A6E35

// pointsOf derives shard's vnode positions. Purely a function of
// (shard, vnode index), so the ring's layout is deterministic.
func (r *Ring) pointsOf(shard uint32) []ringPoint {
	pts := make([]ringPoint, r.vnodes)
	for v := 0; v < r.vnodes; v++ {
		pts[v] = ringPoint{hash: mix((uint64(shard)<<32 | uint64(v)) ^ pointSalt), shard: shard}
	}
	return pts
}

// Add joins shard to the ring; adding a member again is a no-op.
func (r *Ring) Add(shard uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[shard]; ok {
		return
	}
	r.member[shard] = struct{}{}
	r.points = append(r.points, r.pointsOf(shard)...)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Remove ejects shard from the ring; removing a non-member is a no-op.
func (r *Ring) Remove(shard uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[shard]; !ok {
		return
	}
	delete(r.member, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup maps a key to its owning shard (false when the ring is empty).
// The key is mixed first, so sequential keys spread uniformly.
func (r *Ring) Lookup(key uint64) (uint32, bool) {
	h := mix(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard, true
}

// Successors returns up to n distinct member shards walking clockwise
// from the key's hash — the replica placement set (DESIGN.md §D13).
// Successors(key, 1)[0] is exactly Lookup(key), and the set is a pure
// function of (key, membership, vnodes), so any client sharing the
// cluster map recomputes the same placement from a bare ref key. When
// the ring has fewer than n members every member is returned.
func (r *Ring) Successors(key uint64, n int) []uint32 {
	if n <= 0 {
		return nil
	}
	h := mix(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	out := make([]uint32, 0, n)
	seen := make(map[uint32]struct{}, n)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue // adjacent vnodes of one shard collapse to one replica
		}
		seen[p.shard] = struct{}{}
		out = append(out, p.shard)
	}
	return out
}

// Contains reports ring membership.
func (r *Ring) Contains(shard uint32) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.member[shard]
	return ok
}

// Members returns the member shard IDs, sorted.
func (r *Ring) Members() []uint32 {
	r.mu.RLock()
	out := make([]uint32, 0, len(r.member))
	for s := range r.member {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}
