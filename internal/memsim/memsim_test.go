package memsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTestDevice(eng *sim.Engine) *Device {
	return New(eng, "dm0", Config{
		NumPages:       16,
		PageSize:       4096,
		AccessLatency:  75,
		BytesPerSecond: 1 << 30, // 1 GiB/s
	})
}

func TestConfigValidate(t *testing.T) {
	good := Config{NumPages: 1, PageSize: 1, AccessLatency: 0, BytesPerSecond: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumPages: 0, PageSize: 1, BytesPerSecond: 1},
		{NumPages: 1, PageSize: 0, BytesPerSecond: 1},
		{NumPages: 1, PageSize: 1, BytesPerSecond: 0},
		{NumPages: 1, PageSize: 1, AccessLatency: -1, BytesPerSecond: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	eng.Spawn("rw", func(p *sim.Proc) {
		src := []byte("hello disaggregated world")
		d.Write(p, 3, 100, src)
		dst := make([]byte, len(src))
		d.Read(p, 3, 100, dst)
		if !bytes.Equal(src, dst) {
			t.Errorf("round trip got %q, want %q", dst, src)
		}
	})
	eng.Run()
}

func TestAccessChargesLatencyAndBandwidth(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, "dm0", Config{
		NumPages: 4, PageSize: 4096,
		AccessLatency:  100,
		BytesPerSecond: 1_000_000_000, // 1 byte per ns
	})
	var done sim.Time
	eng.Spawn("w", func(p *sim.Proc) {
		d.Write(p, 0, 0, make([]byte, 1000))
		done = p.Now()
	})
	eng.Run()
	if done != 1100 { // 100ns latency + 1000ns transfer
		t.Fatalf("write completed at %d, want 1100", done)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	// Bounds violations panic before any simulated cost is charged, so the
	// Proc argument is never touched and nil is safe here.
	cases := []func(){
		func() { d.Read(nil, 0, 4090, make([]byte, 100)) },
		func() { d.Write(nil, 0, -1, make([]byte, 1)) },
		func() { d.Read(nil, 99, 0, make([]byte, 1)) },
		func() { d.Read(nil, NoFrame, 0, make([]byte, 1)) },
		func() { d.RawFrame(16) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCopyFrameMovesBytesAndCounts(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	eng.Spawn("cp", func(p *sim.Proc) {
		d.Write(p, 1, 0, []byte("abc"))
		d.CopyFrame(p, 2, 1)
		got := make([]byte, 3)
		d.Read(p, 2, 0, got)
		if string(got) != "abc" {
			t.Errorf("copied frame holds %q", got)
		}
	})
	eng.Run()
	if d.Traffic().PageCopies != 1 {
		t.Fatalf("PageCopies = %d, want 1", d.Traffic().PageCopies)
	}
}

func TestZeroFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	eng.Spawn("z", func(p *sim.Proc) {
		d.Write(p, 0, 0, []byte{1, 2, 3})
		d.ZeroFrame(p, 0)
		got := make([]byte, 3)
		d.Read(p, 0, 0, got)
		if got[0] != 0 || got[1] != 0 || got[2] != 0 {
			t.Errorf("frame not zeroed: %v", got)
		}
	})
	eng.Run()
}

func TestRefCounting(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	eng.Spawn("rc", func(p *sim.Proc) {
		if d.RefCount(5) != 0 {
			t.Error("initial refcount nonzero")
		}
		if n := d.AddRef(p, 5, 1); n != 1 {
			t.Errorf("AddRef -> %d, want 1", n)
		}
		if n := d.AddRef(p, 5, 2); n != 3 {
			t.Errorf("AddRef -> %d, want 3", n)
		}
		if n := d.LoadRef(p, 5); n != 3 {
			t.Errorf("LoadRef -> %d, want 3", n)
		}
		if n := d.AddRef(p, 5, -3); n != 0 {
			t.Errorf("AddRef -> %d, want 0", n)
		}
	})
	eng.Run()
	if d.Traffic().Atomics != 4 {
		t.Fatalf("Atomics = %d, want 4", d.Traffic().Atomics)
	}
}

func TestNegativeRefPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	panicked := false
	eng.Spawn("rc", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.AddRef(p, 0, -1)
	})
	eng.Run()
	if !panicked {
		t.Fatal("negative refcount did not panic")
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	eng.Spawn("t", func(p *sim.Proc) {
		d.Write(p, 0, 0, make([]byte, 100))
		d.Read(p, 0, 0, make([]byte, 40))
	})
	eng.Run()
	tr := d.Traffic()
	if tr.WriteBytes != 100 || tr.ReadBytes != 40 || tr.Total() != 140 {
		t.Fatalf("traffic = %+v", tr)
	}
	d.ResetTraffic()
	if d.Traffic().Total() != 0 {
		t.Fatal("ResetTraffic failed")
	}
}

func TestSetAccessLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	d.SetAccessLatency(265)
	var done sim.Time
	eng.Spawn("w", func(p *sim.Proc) {
		d.LoadRef(p, 0)
		done = p.Now()
	})
	eng.Run()
	if done < 265 {
		t.Fatalf("LoadRef under 265ns latency finished at %d", done)
	}
}

func TestBusSharedAcrossAccesses(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, "dm0", Config{
		NumPages: 4, PageSize: 4096,
		AccessLatency:  0,
		BytesPerSecond: 1_000_000_000,
	})
	var done []sim.Time
	for i := 0; i < 2; i++ {
		f := FrameID(i)
		eng.Spawn("w", func(p *sim.Proc) {
			d.Write(p, f, 0, make([]byte, 1000))
			done = append(done, p.Now())
		})
	}
	eng.Run()
	if done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("bus did not serialize: %v", done)
	}
}

func TestFreeListFIFO(t *testing.T) {
	fl := NewFreeList(3)
	if fl.Len() != 3 {
		t.Fatalf("Len = %d", fl.Len())
	}
	a, _ := fl.Pop()
	b, _ := fl.Pop()
	if a != 0 || b != 1 {
		t.Fatalf("pop order %d,%d, want 0,1", a, b)
	}
	fl.Push(a)
	c, _ := fl.Pop()
	if c != 2 {
		t.Fatalf("pop = %d, want 2 (FIFO)", c)
	}
	d, _ := fl.Pop()
	if d != 0 {
		t.Fatalf("pop = %d, want recycled 0", d)
	}
	if _, ok := fl.Pop(); ok {
		t.Fatal("pop from empty list succeeded")
	}
}

func TestFreeListPopN(t *testing.T) {
	fl := NewFreeList(5)
	got := fl.PopN(3)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("PopN(3) = %v", got)
	}
	got = fl.PopN(10)
	if len(got) != 2 {
		t.Fatalf("PopN(10) returned %d frames, want remaining 2", len(got))
	}
	fl.PushAll([]FrameID{7, 8})
	if fl.Len() != 2 {
		t.Fatalf("Len after PushAll = %d", fl.Len())
	}
}

func TestAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	if d.NumPages() != 16 || d.PageSize() != 4096 {
		t.Fatalf("accessors: %d pages, %dB", d.NumPages(), d.PageSize())
	}
	if d.Config().AccessLatency != 75 {
		t.Fatalf("Config() latency %d", d.Config().AccessLatency)
	}
}

func TestSetRef(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	d.SetRef(3, 5)
	if d.RefCount(3) != 5 {
		t.Fatalf("RefCount = %d", d.RefCount(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative SetRef did not panic")
		}
	}()
	d.SetRef(3, -1)
}

func TestAddRefBatch(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	frames := []FrameID{1, 3, 5}
	var counts []int32
	var dur sim.Time
	eng.Spawn("b", func(p *sim.Proc) {
		start := p.Now()
		counts = d.AddRefBatch(p, frames, 2)
		dur = p.Now() - start
	})
	eng.Run()
	for i, c := range counts {
		if c != 2 {
			t.Fatalf("count[%d] = %d", i, c)
		}
	}
	for _, f := range frames {
		if d.RefCount(f) != 2 {
			t.Fatalf("RefCount(%d) = %d", f, d.RefCount(f))
		}
	}
	// Pipelined: one latency for the whole batch, not one per frame.
	if dur >= 3*75 {
		t.Fatalf("batch of 3 took %dns; latency not amortized", dur)
	}
	if d.Traffic().Atomics != 3 {
		t.Fatalf("Atomics = %d", d.Traffic().Atomics)
	}
	// Empty batch is free.
	eng2 := sim.NewEngine(1)
	d2 := newTestDevice(eng2)
	if got := d2.AddRefBatch(nil, nil, 1); got != nil {
		t.Fatal("empty batch returned counts")
	}
}

func TestAddRefBatchNegativePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	panicked := false
	eng.Spawn("b", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.AddRefBatch(p, []FrameID{0}, -1)
	})
	eng.Run()
	if !panicked {
		t.Fatal("negative batch refcount did not panic")
	}
}

func TestCopyFramesCPU(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, "dm", Config{
		NumPages: 8, PageSize: 4096,
		AccessLatency:  100,
		BytesPerSecond: 80_000_000_000, // fast bus
	})
	var dur sim.Time
	eng.Spawn("cp", func(p *sim.Proc) {
		d.Write(p, 0, 0, []byte("source-a"))
		d.Write(p, 1, 0, []byte("source-b"))
		start := p.Now()
		// Slow CPU copy: 1 GB/s => 2 pages * 8KiB = 16384ns dominate.
		d.CopyFramesCPU(p, []FrameID{4, 5}, []FrameID{0, 1}, 1_000_000_000)
		dur = p.Now() - start
	})
	eng.Run()
	if got := string(d.RawFrame(4)[:8]); got != "source-a" {
		t.Fatalf("frame 4 = %q", got)
	}
	if got := string(d.RawFrame(5)[:8]); got != "source-b" {
		t.Fatalf("frame 5 = %q", got)
	}
	// CPU-bound: ~16µs, not bus time (~200ns).
	if dur < 16000 || dur > 17000 {
		t.Fatalf("CPU copy took %dns, want ~16384", dur)
	}
	if d.Traffic().PageCopies != 2 {
		t.Fatalf("PageCopies = %d", d.Traffic().PageCopies)
	}
}

func TestCopyFramesCPUValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newTestDevice(eng)
	for i, fn := range []func(){
		func() { d.CopyFramesCPU(nil, []FrameID{1}, []FrameID{1, 2}, 1) },
		func() { d.CopyFramesCPU(nil, []FrameID{1}, []FrameID{2}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	// Empty copy is a no-op.
	d.CopyFramesCPU(nil, nil, nil, 1)
}

func TestBusBusyTime(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, "dm", Config{NumPages: 2, PageSize: 4096, AccessLatency: 0, BytesPerSecond: 1_000_000_000})
	eng.Spawn("w", func(p *sim.Proc) {
		d.Write(p, 0, 0, make([]byte, 1000))
	})
	eng.Run()
	if d.BusBusyTime() != 1000 {
		t.Fatalf("BusBusyTime = %d", d.BusBusyTime())
	}
}

func TestNewEmptyFreeList(t *testing.T) {
	fl := NewEmptyFreeList()
	if fl.Len() != 0 {
		t.Fatalf("Len = %d", fl.Len())
	}
	fl.Push(7)
	if f, ok := fl.Pop(); !ok || f != 7 {
		t.Fatalf("Pop = %d,%v", f, ok)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	New(eng, "bad", Config{})
}

// Property: any interleaving of frame writes through the device is readable
// back intact — frames never alias each other.
func TestFrameIsolationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		eng := sim.NewEngine(seed)
		d := New(eng, "dm", Config{NumPages: 8, PageSize: 128, AccessLatency: 1, BytesPerSecond: 1 << 30})
		rng := rand.New(rand.NewSource(seed))
		want := make([][]byte, 8)
		ok := true
		eng.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				f := FrameID(rng.Intn(8))
				buf := make([]byte, 1+rng.Intn(127))
				rng.Read(buf)
				off := rng.Intn(128 - len(buf) + 1)
				d.Write(p, f, off, buf)
				if want[f] == nil {
					want[f] = make([]byte, 128)
				}
				copy(want[f][off:], buf)
			}
			for f := 0; f < 8; f++ {
				if want[f] == nil {
					continue
				}
				got := make([]byte, 128)
				d.Read(p, FrameID(f), 0, got)
				if !bytes.Equal(got, want[f]) {
					ok = false
				}
			}
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
