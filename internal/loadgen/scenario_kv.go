package loadgen

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/dm"
	"repro/internal/liverpc"
	"repro/internal/workload"
)

// kvScenario is YCSB-shaped key-value load straight on the DM pool:
// Keys staged refs form the store, reads fetch a Zipf-picked key's
// value and verify its content byte-for-byte, writes stage a fresh
// value and free the old one. All staging and freeing goes through one
// long-lived shared session so worker churn never reaps live values;
// reads run on per-worker sessions, which is where failover shows up.
type kvScenario struct {
	shared liverpc.DM
	slots  []kvSlot
	value  int

	payloadLoss atomic.Int64
	freeErrors  atomic.Int64
}

type kvSlot struct {
	mu   sync.RWMutex
	ref  dm.Ref
	seed uint64
}

// KV builds the kv scenario.
func KV() Scenario { return &kvScenario{} }

func (s *kvScenario) Name() string { return "kv" }

func (s *kvScenario) Setup(env *Env) error {
	sess, err := env.NewSession()
	if err != nil {
		return err
	}
	s.shared = sess
	s.value = env.ValueSize
	s.slots = make([]kvSlot, env.Keys)
	buf := make([]byte, env.ValueSize)
	for k := range s.slots {
		seed := uint64(k)
		apps.FillPayload(buf, seed)
		ref, err := sess.StageRef(buf)
		if err != nil {
			return fmt.Errorf("loadgen: kv preload key %d: %w", k, err)
		}
		s.slots[k].ref, s.slots[k].seed = ref, seed
	}
	return nil
}

func (s *kvScenario) NewWorker(env *Env, w int) (Worker, error) {
	sess, err := env.NewSession()
	if err != nil {
		return nil, err
	}
	ws := workload.DeriveSeed(env.Seed, uint64(w))
	return &kvWorker{
		s:        s,
		sess:     sess,
		rng:      rand.New(rand.NewPCG(ws, ws^0x9e3779b97f4a7c15)),
		keys:     workerKeys(env, w, uint64(len(s.slots)), env.Seed),
		readFrac: env.ReadFrac,
		buf:      make([]byte, env.ValueSize),
		want:     make([]byte, env.ValueSize),
	}, nil
}

func (s *kvScenario) Counters() map[string]float64 {
	return map[string]float64{
		"payload-loss": float64(s.payloadLoss.Load()),
		"free-errors":  float64(s.freeErrors.Load()),
	}
}

func (s *kvScenario) Close() error { return nil }

type kvWorker struct {
	s        *kvScenario
	sess     liverpc.DM
	rng      *rand.Rand
	keys     workload.KeyGen
	readFrac float64
	buf      []byte
	want     []byte
}

func (w *kvWorker) Do() (string, int64, error) {
	slot := &w.s.slots[w.keys.Next()]
	if w.rng.Float64() < w.readFrac {
		// Hold the read lock across the fetch so a concurrent write
		// can't free the ref out from under the read — the lock stands
		// in for the app-level ref-counting a real store would do.
		slot.mu.RLock()
		seed := slot.seed
		err := w.sess.ReadRef(slot.ref, 0, w.buf)
		slot.mu.RUnlock()
		if err != nil {
			return "read", 0, err
		}
		apps.FillPayload(w.want, seed)
		if !bytes.Equal(w.buf, w.want) {
			// A read that "succeeds" with wrong bytes is the one
			// failure the harness exists to catch.
			w.s.payloadLoss.Add(1)
			return "read", 0, fmt.Errorf("loadgen: kv payload mismatch (seed %d)", seed)
		}
		return "read", int64(len(w.buf)), nil
	}
	seed := w.rng.Uint64()
	apps.FillPayload(w.buf, seed)
	ref, err := w.s.shared.StageRef(w.buf)
	if err != nil {
		return "write", 0, err
	}
	slot.mu.Lock()
	old := slot.ref
	slot.ref, slot.seed = ref, seed
	slot.mu.Unlock()
	// The swap already published the new value; a failed free of the
	// old ref (say its primary is mid-crash) costs pool pages, not
	// correctness, so it's a counter rather than an op error.
	if err := w.s.shared.FreeRef(old); err != nil {
		w.s.freeErrors.Add(1)
	}
	return "write", int64(len(w.buf)), nil
}

func (w *kvWorker) Close() error { return nil }
