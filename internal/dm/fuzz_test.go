package dm

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRef hardens Ref parsing against arbitrary RPC payloads.
func FuzzUnmarshalRef(f *testing.F) {
	f.Add([]byte{})
	f.Add(Ref{Server: 1, Key: 2, Size: 3}.Marshal())
	f.Add(make([]byte, EncodedRefSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalRef(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.Marshal(), data[:EncodedRefSize]) {
			t.Fatal("re-marshal mismatch")
		}
	})
}
