// Package dm defines the disaggregated-memory abstractions shared by the
// DmRPC-net and DmRPC-CXL backends: DM virtual addresses, Ref objects
// (paper §IV-B), the client-side Space interface implementing the paper's
// programming API (Table II), and the per-process virtual-address
// allocator (the paper's "VA allocation tree", §V-A1).
package dm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rpc"
	"repro/internal/sim"
)

// RemoteAddr is a byte-granular DM virtual address within one process's
// remote address space. Address arithmetic is explicit via Add.
type RemoteAddr uint64

// Add offsets the address by n bytes.
func (a RemoteAddr) Add(n int64) RemoteAddr { return RemoteAddr(int64(a) + n) }

func (a RemoteAddr) String() string { return fmt.Sprintf("dm:0x%x", uint64(a)) }

// Ref is the small object passed along RPC chains on behalf of a large
// shared region ("The Ref object is small (several bytes), and is
// transferred along the RPC chain on behalf of the large data", §IV-B).
type Ref struct {
	// Server identifies the DM server (net) or G-FAM device (CXL) holding
	// the pages.
	Server uint32
	// Key is the server-generated unique key naming the shared page set.
	Key uint64
	// Size is the shared region's length in bytes.
	Size int64
}

// EncodedRefSize is the wire size of a Ref.
const EncodedRefSize = 4 + 8 + 8

// Encode appends the Ref to e.
func (r Ref) Encode(e *rpc.Enc) { e.U32(r.Server).U64(r.Key).I64(r.Size) }

// DecodeRef reads a Ref from d.
func DecodeRef(d *rpc.Dec) Ref {
	return Ref{Server: d.U32(), Key: d.U64(), Size: d.I64()}
}

// Marshal returns the Ref's wire form.
func (r Ref) Marshal() []byte {
	e := rpc.NewEnc(EncodedRefSize)
	r.Encode(e)
	return e.Bytes()
}

// UnmarshalRef parses a Ref from its wire form.
func UnmarshalRef(b []byte) (Ref, error) {
	d := rpc.NewDec(b)
	r := DecodeRef(d)
	if d.Err() != nil {
		return Ref{}, d.Err()
	}
	return r, nil
}

func (r Ref) String() string {
	return fmt.Sprintf("ref{srv=%d key=%d size=%d}", r.Server, r.Key, r.Size)
}

// Errors shared by DM backends.
var (
	// ErrOutOfMemory means the DM pool has no free pages.
	ErrOutOfMemory = errors.New("dm: out of disaggregated memory")
	// ErrBadAddress means the address does not name an allocated region.
	ErrBadAddress = errors.New("dm: bad remote address")
	// ErrBadRef means the Ref's key is unknown (or already reclaimed).
	ErrBadRef = errors.New("dm: unknown ref")
	// ErrOutOfRange means an access crosses the end of its region.
	ErrOutOfRange = errors.New("dm: access out of region range")
	// ErrRefExists means a caller-keyed stage (stage_at) named a key the
	// server already holds — the replica-placement conflict signal.
	ErrRefExists = errors.New("dm: ref key already exists")
)

// Space is the client-side DM programming interface, one per process. It
// is the paper's Table II API: Alloc=ralloc, Free=rfree,
// CreateRef=create_ref, MapRef=map_ref, Read=rread, Write=rwrite.
//
// For DmRPC-net, Read/Write are explicit network operations against the DM
// server. For DmRPC-CXL they model load/store instructions over the CXL
// link — same signature, radically different cost, exactly the paper's
// split ("rwrite and rread only appear in DmRPC-net ... In DmRPC-CXL, the
// user can directly operate on the disaggregated memory").
type Space interface {
	// Alloc reserves size bytes of disaggregated memory and returns its DM
	// virtual base address.
	Alloc(p *sim.Proc, size int64) (RemoteAddr, error)
	// Free releases the region based at addr.
	Free(p *sim.Proc, addr RemoteAddr) error
	// CreateRef marks the region [addr, addr+size) read-only and returns a
	// Ref naming its pages; subsequent writes by any sharer trigger
	// copy-on-write.
	CreateRef(p *sim.Proc, addr RemoteAddr, size int64) (Ref, error)
	// MapRef maps the pages named by ref into this process's DM address
	// space and returns the new base address.
	MapRef(p *sim.Proc, ref Ref) (RemoteAddr, error)
	// FreeRef releases the reference's own hold on its pages. This is a
	// repo extension over the paper's Table II: without it the +1 taken by
	// CreateRef could never be returned and pages would leak.
	FreeRef(p *sim.Proc, ref Ref) error
	// Write stores src at addr.
	Write(p *sim.Proc, addr RemoteAddr, src []byte) error
	// Read loads len(dst) bytes from addr into dst.
	Read(p *sim.Proc, addr RemoteAddr, dst []byte) error
}

// RefStager is the fused staging fast path: produce a Ref holding data in
// one operation (one round trip for network DM), equivalent to
// Alloc+Write+CreateRef+Free but without intermediate round trips. Both
// backends implement it; core.MakeArg uses it when present.
type RefStager interface {
	StageRef(p *sim.Proc, data []byte) (Ref, error)
}

// RefReader is the read fast path: read directly through a Ref without
// establishing a mapping, for consumers that never write. Reads observe
// the ref's shared snapshot, which is exactly what a fresh read-only
// mapping would observe.
type RefReader interface {
	ReadRef(p *sim.Proc, ref Ref, off int64, dst []byte) error
}

// PageCount returns how many pages of pageSize cover size bytes.
func PageCount(size int64, pageSize int) int {
	if size <= 0 {
		return 0
	}
	return int((size + int64(pageSize) - 1) / int64(pageSize))
}

// VAAllocator hands out non-overlapping page-aligned virtual address
// ranges, modelling the per-process "VA allocation tree that records
// allocated VA ranges, similar to the Linux vma tree" (§V-A1). First-fit
// over a sorted region list.
type VAAllocator struct {
	pageSize int64
	base     uint64
	limit    uint64
	regions  []vaRegion // sorted by start
}

type vaRegion struct {
	start uint64
	size  int64 // requested size in bytes (page-rounded extent derivable)
}

// NewVAAllocator returns an allocator over [base, limit) with the given
// page size.
func NewVAAllocator(pageSize int, base, limit uint64) *VAAllocator {
	if pageSize <= 0 || base >= limit {
		panic("dm: invalid VA allocator parameters")
	}
	return &VAAllocator{pageSize: int64(pageSize), base: base, limit: limit}
}

// extent returns the page-rounded length of a region holding size bytes.
func (va *VAAllocator) extent(size int64) uint64 {
	pages := (size + va.pageSize - 1) / va.pageSize
	if pages == 0 {
		pages = 1
	}
	return uint64(pages) * uint64(va.pageSize)
}

// Alloc finds the lowest free range fitting size bytes and records it.
func (va *VAAllocator) Alloc(size int64) (RemoteAddr, error) {
	if size < 0 {
		return 0, ErrBadAddress
	}
	need := va.extent(size)
	prev := va.base
	for i, r := range va.regions {
		if r.start-prev >= need {
			va.insert(i, vaRegion{start: prev, size: size})
			return RemoteAddr(prev), nil
		}
		prev = r.start + va.extent(r.size)
	}
	if va.limit-prev >= need {
		va.insert(len(va.regions), vaRegion{start: prev, size: size})
		return RemoteAddr(prev), nil
	}
	return 0, ErrOutOfMemory
}

func (va *VAAllocator) insert(i int, r vaRegion) {
	va.regions = append(va.regions, vaRegion{})
	copy(va.regions[i+1:], va.regions[i:])
	va.regions[i] = r
}

// Free removes the region based exactly at addr and returns its size.
func (va *VAAllocator) Free(addr RemoteAddr) (int64, error) {
	i := sort.Search(len(va.regions), func(i int) bool {
		return va.regions[i].start >= uint64(addr)
	})
	if i == len(va.regions) || va.regions[i].start != uint64(addr) {
		return 0, ErrBadAddress
	}
	size := va.regions[i].size
	va.regions = append(va.regions[:i], va.regions[i+1:]...)
	return size, nil
}

// Lookup returns the region containing addr: its base and byte size.
func (va *VAAllocator) Lookup(addr RemoteAddr) (base RemoteAddr, size int64, err error) {
	i := sort.Search(len(va.regions), func(i int) bool {
		return va.regions[i].start > uint64(addr)
	})
	if i == 0 {
		return 0, 0, ErrBadAddress
	}
	r := va.regions[i-1]
	if uint64(addr) >= r.start+va.extent(r.size) {
		return 0, 0, ErrBadAddress
	}
	return RemoteAddr(r.start), r.size, nil
}

// NumRegions returns the number of live regions.
func (va *VAAllocator) NumRegions() int { return len(va.regions) }

// PageSize returns the allocator's page size.
func (va *VAAllocator) PageSize() int { return int(va.pageSize) }
