package apps

import "testing"

func TestAggregateSensitivity(t *testing.T) {
	buf := make([]byte, 4096)
	FillPayload(buf, 3)
	sum := Aggregate(buf)
	buf[137]++
	if Aggregate(buf) == sum {
		t.Fatal("aggregate did not change when a byte changed")
	}
}

func TestMediaRoundTrip(t *testing.T) {
	buf := make([]byte, 512)
	for id := uint64(0); id < 5; id++ {
		FillMedia(buf, id)
		if err := CheckMedia(buf, id); err != nil {
			t.Fatal(err)
		}
	}
	FillMedia(buf, 9)
	if err := CheckMedia(buf, 10); err == nil {
		t.Fatal("CheckMedia accepted media from another post")
	}
	FillMedia(buf, 4)
	buf[99] ^= 0xff
	if err := CheckMedia(buf, 4); err == nil {
		t.Fatal("CheckMedia accepted corrupt media")
	}
}
