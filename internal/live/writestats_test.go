package live

import (
	"testing"
	"time"
)

// TestWriteStatsComputedFieldsQuiesce drives a pipelined async burst
// through the coalescing writer and checks the derived observability
// fields: the queue-depth gauges return to zero once the writer drains,
// the frame accounting identity holds (every frame is inline, direct, or
// coalesced), and the group-commit factor is the coalesced-frames-per-
// batch ratio dmserverd prints.
func TestWriteStatsComputedFieldsQuiesce(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	a, err := cl.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 512)
	const depth = 16
	ring := make([]*AsyncOp, 0, depth)
	for i := 0; i < 400; i++ {
		if len(ring) == depth {
			if err := ring[0].Wait(); err != nil {
				t.Fatal(err)
			}
			ring = ring[1:]
		}
		ring = append(ring, cl.WriteAsync(a, src))
	}
	for _, op := range ring {
		if err := op.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	for _, side := range []struct {
		name string
		get  func() WriteStats
	}{
		{"client", cl.node.WriteStats},
		{"server", srv.WriteStats},
	} {
		// Every response is in; the flush loop may still be retiring its
		// last batch, so poll the gauges down to zero.
		deadline := time.Now().Add(5 * time.Second)
		ws := side.get()
		for ws.QueueFrames != 0 || ws.QueueBytes != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("%s writer queue did not quiesce: frames=%d bytes=%d",
					side.name, ws.QueueFrames, ws.QueueBytes)
			}
			time.Sleep(5 * time.Millisecond)
			ws = side.get()
		}
		if ws.Frames == 0 {
			t.Fatalf("%s writer saw no frames", side.name)
		}
		if ws.InlineFrames+ws.DirectFrames+ws.CoalescedFrames != ws.Frames {
			t.Fatalf("%s frame accounting broken: inline=%d direct=%d coalesced=%d total=%d",
				side.name, ws.InlineFrames, ws.DirectFrames, ws.CoalescedFrames, ws.Frames)
		}
		if ws.Batches > 0 {
			want := float64(ws.CoalescedFrames) / float64(ws.Batches)
			if ws.GroupCommitFactor != want {
				t.Fatalf("%s group-commit factor = %v, want %v", side.name, ws.GroupCommitFactor, want)
			}
		} else if ws.GroupCommitFactor != 0 {
			t.Fatalf("%s group-commit factor = %v with no batches", side.name, ws.GroupCommitFactor)
		}
	}

	// The pipelined burst must actually have exercised group commit on at
	// least one side (the server's responses pile up behind the in-flight
	// flush); otherwise this test is vacuous.
	if cl.node.WriteStats().CoalescedFrames == 0 && srv.WriteStats().CoalescedFrames == 0 {
		t.Fatal("no coalesced frames anywhere: the burst never hit the batch path")
	}
}
