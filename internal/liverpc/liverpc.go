// Package liverpc is the application-level DmRPC framework over the live
// TCP path: named service methods dispatched on a live.Node, client
// stubs with deadline/trace propagation reusing the transport's
// retry/dedup machinery, and size-aware Payload arguments whose small
// values travel inline while large ones are staged once into the DM
// server pool and flow through the rest of the call chain as a Ref
// (paper §IV). It is the real-socket counterpart of the simulator's
// internal/core + internal/msvc service layer: the same pass-by-reference
// argument model, but between real processes over real TCP.
//
// Ownership model: whoever stages a payload owns its ref and releases it
// (Caller.Release) once the call chain no longer needs it; a consumer
// that wants the data to outlive the producer's session re-owns it under
// its own PID (Adopt), so per-frame refcounts keep the pages alive and a
// crashed producer's lease reap cannot take them away (DESIGN.md §D9).
package liverpc

import (
	"fmt"
	"math/rand/v2"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/live"
	"repro/internal/rpc"
)

// DM is the disaggregated-memory surface liverpc stages and fetches
// through: satisfied by *live.Client (a single server pool) and
// *pool.Client (a sharded cluster). Backends whose refs are
// cluster-addressed additionally implement LocatedDM, making every
// staged payload travel in dmwire's versioned v1 located-ref form.
type DM interface {
	StageRef(data []byte) (dm.Ref, error)
	ReadRef(ref dm.Ref, off int64, dst []byte) error
	FreeRef(ref dm.Ref) error
	MapRef(ref dm.Ref) (dm.RemoteAddr, error)
	CreateRef(addr dm.RemoteAddr, size int64) (dm.Ref, error)
	Free(addr dm.RemoteAddr) error
}

// LocatedDM marks a DM backend whose Ref.Server fields are cluster-wide
// shard IDs rather than connection-local indices.
type LocatedDM interface {
	DM
	LocatedRefs() bool
}

// ReplicatedDM marks a DM backend that replicates staged payloads and
// can fail reads over across replicas: satisfied by *pool.Client at
// ReplicaFactor > 1 (and at R=1, where the hint paths just degrade to
// plain reads). Stage emits replicated (v2) payloads through it, and
// Fetch/FetchLease feed a payload's carried replica hints back into the
// failover read path — so a consumer can survive the primary's death
// even when the ref was staged by another process. The hints are
// advisory, not authoritative: a migration (DESIGN.md §D16) may have
// moved the copies since the payload was marshaled, and ReadRefFrom is
// expected to fail over past stale hints through the backend's own
// placement knowledge (ring successors, cluster registry).
type ReplicatedDM interface {
	DM
	Replicas(ref dm.Ref) []uint32
	ReadRefFrom(ref dm.Ref, hints []uint32, off int64, dst []byte) error
	ReadRefLeaseFrom(ref dm.Ref, hints []uint32, off, size int64) (*live.Buf, error)
}

// BufDM marks a DM backend with a zero-copy read path: ReadRefLease
// hands back the transport's pooled response frame as a refcounted
// live.Buf instead of copying into a caller buffer. Satisfied by
// *live.Client and *pool.Client; FetchLease uses it when available.
type BufDM interface {
	DM
	ReadRefLease(ref dm.Ref, off, size int64) (*live.Buf, error)
}

// normDM collapses typed-nil backend pointers to a nil interface, so
// call sites holding a nil *live.Client keep getting the inline-only
// behaviour (errNoDM on ref ops) instead of a nil-pointer panic.
func normDM(dmc DM) DM {
	if dmc == nil {
		return nil
	}
	if v := reflect.ValueOf(dmc); v.Kind() == reflect.Pointer && v.IsNil() {
		return nil
	}
	return dmc
}

// located reports whether dmc mints cluster-addressed refs.
func located(dmc DM) bool {
	l, ok := dmc.(LocatedDM)
	return ok && l.LocatedRefs()
}

// MethodCall is the single transport-level method every liverpc service
// registers on its live.Node; application methods are dispatched by name
// from the call envelope. Kept in its own range clear of the DM
// (0x0100), CXL (0x0200), store (0x0300), msvc (0x04xx) and bench
// (0x0500) method spaces.
const MethodCall rpc.Method = 0x0600

// DefaultInlineThreshold is the size-aware transfer cutoff: payloads at
// or below this many bytes pass by value inside the envelope.
const DefaultInlineThreshold = 1024

// Config tunes one liverpc endpoint (a Caller or a Service).
type Config struct {
	// Net holds the transport knobs (deadlines, retries, frame caps,
	// dialer) for the endpoint's live.Node. Zero fields use the live
	// defaults.
	Net live.NodeConfig
	// InlineThreshold is the size-aware cutoff in bytes. Zero means
	// DefaultInlineThreshold; negative means "always pass by reference".
	InlineThreshold int
	// ForceInline disables pass-by-reference entirely, producing the
	// pass-by-value (eRPC-style) baseline from the same application code.
	// It also bypasses the DM backend's hot-ref cache as a side effect:
	// with nothing staged there are no refs to key on, so CacheBytes on
	// the backend is inert under ForceInline.
	ForceInline bool
	// DM is the endpoint's default staging backend — a *live.Client or a
	// sharded *pool.Client — used when the constructor's dmc argument is
	// nil. Passing the cluster here is how an application flips a whole
	// deployment from single-server to sharded without touching its
	// service constructors.
	DM DM
}

// threshold resolves the staging cutoff.
func (c Config) threshold() int {
	if c.ForceInline {
		return int(^uint(0) >> 1) // MaxInt: everything inlines
	}
	if c.InlineThreshold == 0 {
		return DefaultInlineThreshold
	}
	if c.InlineThreshold < 0 {
		return -1
	}
	return c.InlineThreshold
}

// callTimeout resolves the default overall per-call deadline.
func (c Config) callTimeout() time.Duration {
	if c.Net.CallTimeout != 0 {
		return c.Net.CallTimeout
	}
	return live.DefaultNodeConfig().CallTimeout
}

// CallOpts tunes one service call.
type CallOpts struct {
	// Timeout is the overall deadline including retries; it also rides
	// the envelope so callees inherit the remaining budget. 0 uses the
	// endpoint's default; negative disables.
	Timeout time.Duration
	// Idempotent marks the call safe to retry without a dedup token.
	// Non-idempotent calls are still retried, but carry a token so the
	// serving node applies them at most once (DESIGN.md §D8).
	Idempotent bool
}

// Caller issues service calls: the client stub side of the framework.
// A Caller owns its live.Node (transport, retries, dedup) and borrows a
// DM client for staging; it is safe for concurrent use.
type Caller struct {
	node *live.Node
	dm   DM
	cfg  Config

	cid uint64
	seq atomic.Uint64
}

// NewCaller builds a client stub endpoint. dmc may be nil when the
// configuration never stages (ForceInline), or when the caller only
// sends inline payloads and never materializes refs; a nil dmc falls
// back to cfg.DM.
func NewCaller(dmc DM, cfg Config) *Caller {
	cid := rand.Uint64()
	if cid == 0 {
		cid = 1
	}
	if dmc = normDM(dmc); dmc == nil {
		dmc = normDM(cfg.DM)
	}
	return &Caller{node: live.NewNodeWith(cfg.Net), dm: dmc, cfg: cfg, cid: cid}
}

// Close tears down the caller's transport (not the borrowed DM client).
func (c *Caller) Close() error { return c.node.Close() }

// DM returns the borrowed DM backend (nil for inline-only callers).
func (c *Caller) DM() DM { return c.dm }

// token mints the dedup token for one non-idempotent call.
func (c *Caller) token() dmwire.Token {
	return dmwire.Token{CID: c.cid, Seq: c.seq.Add(1)}
}

// errNoDM is returned when a ref operation reaches a DM-less endpoint.
var errNoDM = fmt.Errorf("liverpc: pass-by-reference payload reached an endpoint with no DM client")

// Stage builds a size-aware payload from data: at or below the
// configured threshold the bytes inline; above it they are staged into
// the DM pool in one round trip and only the Ref travels. The caller
// owns a staged ref and must Release it when the chain is done.
func (c *Caller) Stage(data []byte) (Payload, error) {
	if len(data) <= c.cfg.threshold() {
		return Inline(data), nil
	}
	if c.dm == nil {
		return Payload{}, errNoDM
	}
	ref, err := c.dm.StageRef(data)
	if err != nil {
		return Payload{}, err
	}
	if located(c.dm) {
		if rd, ok := c.dm.(ReplicatedDM); ok {
			if shards := rd.Replicas(ref); len(shards) >= 2 {
				return ByReplicated(ref, shards), nil
			}
		}
		return ByLocated(ref), nil
	}
	return ByRef(ref), nil
}

// Fetch materializes a payload: inline bytes are returned as-is
// (aliased); ref payloads are read through the DM server (read_ref, no
// mapping) into a fresh buffer.
func (c *Caller) Fetch(p Payload) ([]byte, error) {
	return fetch(c.dm, p)
}

// FetchLease materializes a payload as a leased buffer (DESIGN.md §D12):
// ref payloads read through a zero-copy BufDM backend arrive in the
// transport's pooled response frame with no final copy; the caller must
// Release the Buf exactly once. Inline payloads are wrapped without
// copying and still alias their transport buffer — treat them with
// Fetch's inline lifetime rules. Non-BufDM backends fall back to a
// copying read delivered under the same Buf contract.
func (c *Caller) FetchLease(p Payload) (*live.Buf, error) {
	return fetchLease(c.dm, p)
}

// Release drops a staged payload's ref hold. Inline payloads are no-ops.
func (c *Caller) Release(p Payload) error {
	return release(c.dm, p)
}

// Call invokes method at addr with args and default options.
func (c *Caller) Call(addr, method string, args ...Payload) ([]Payload, error) {
	return c.CallOpts(addr, method, CallOpts{}, args...)
}

// CallOpts invokes method at addr with args. The call is bounded by an
// overall deadline (propagated to the callee via the envelope), retried
// across transport failures via the node's reconnect path, and — unless
// marked Idempotent — carries a dedup token so the serving node applies
// it at most once. Returned inline payloads are private copies; returned
// refs are owned per the application's protocol.
func (c *Caller) CallOpts(addr, method string, opts CallOpts, args ...Payload) ([]Payload, error) {
	env := dmwire.CallEnvelope{
		Method:  method,
		TraceID: rand.Uint64(),
		Args:    payloadsToWire(args),
	}
	return c.issue(addr, env, opts)
}

// prepare resolves opts against the endpoint defaults, stamps the
// deadline budget into the envelope, and builds the transport options
// (idempotent flag or a fresh dedup token). Shared by the synchronous
// and asynchronous issue paths.
func (c *Caller) prepare(env *dmwire.CallEnvelope, opts CallOpts) live.CallOpts {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = c.cfg.callTimeout()
	}
	if timeout > 0 {
		ms := int64((timeout + time.Millisecond - 1) / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		if max := int64(^uint32(0)); ms > max {
			ms = max
		}
		env.DeadlineMillis = uint32(ms)
	}
	lopts := live.CallOpts{Timeout: timeout}
	if opts.Idempotent {
		lopts.Idempotent = true
	} else {
		lopts.Token = c.token()
	}
	return lopts
}

// issue sends one envelope and decodes the result list; shared by
// top-level and nested (Ctx) calls.
func (c *Caller) issue(addr string, env dmwire.CallEnvelope, opts CallOpts) ([]Payload, error) {
	lopts := c.prepare(&env, opts)
	var out []Payload
	err := c.node.CallConsumeOpts(addr, MethodCall, env.MarshalHdr(), env.Bulk(),
		func(resp []byte) error {
			renv, err := dmwire.UnmarshalReturnEnvelope(resp)
			if err != nil {
				return err
			}
			// The response buffer is pooled and recycled after consume
			// returns, so inline results must be copied out.
			out = payloadsFromWire(renv.Args, true)
			return nil
		}, lopts)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Handler processes one service call. args alias transport buffers:
// inline payload bytes are valid only until the handler returns —
// handlers that retain them must copy (Fetch on a ref payload always
// returns a fresh buffer). Handlers may issue nested calls via ctx.
type Handler func(ctx *Ctx, args []Payload) ([]Payload, error)

// Service is one liverpc endpoint serving named methods over TCP — the
// real-network counterpart of a simulator msvc.Service. It embeds a
// Caller, so handlers issue nested calls (with deadline/trace
// propagation) over the same multiplexed connections.
type Service struct {
	name   string
	caller *Caller
	mu     sync.RWMutex
	meths  map[string]Handler
}

// NewService builds a service named name over a borrowed DM backend
// (nil for inline-only services, e.g. pure movers in by-value mode; a
// nil dmc falls back to cfg.DM). Register handlers, then Serve.
func NewService(name string, dmc DM, cfg Config) *Service {
	s := &Service{
		name:   name,
		caller: NewCaller(dmc, cfg),
		meths:  make(map[string]Handler),
	}
	s.caller.node.Handle(MethodCall, s.dispatch)
	return s
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Caller returns the service's embedded client stub (for issuing
// top-level calls from the same endpoint).
func (s *Service) Caller() *Caller { return s.caller }

// Handle registers h for the named method. Duplicate registration
// panics; registering after Serve is allowed (copy-on-read map).
func (s *Service) Handle(method string, h Handler) {
	if len(method) > dmwire.MaxMethodLen {
		panic(fmt.Sprintf("liverpc: method name %q exceeds %d bytes", method, dmwire.MaxMethodLen))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.meths[method]; dup {
		panic(fmt.Sprintf("liverpc: duplicate handler for method %q", method))
	}
	s.meths[method] = h
}

// Serve accepts connections on ln until Close; it returns nil after
// Close.
func (s *Service) Serve(ln net.Listener) error { return s.caller.node.Serve(ln) }

// Close stops serving and tears down the service's transport (not its
// borrowed DM client).
func (s *Service) Close() error { return s.caller.node.Close() }

// dispatch is the transport-level handler: decode the envelope, run the
// named method, encode the result list.
func (s *Service) dispatch(from net.Addr, body []byte) ([]byte, error) {
	env, err := dmwire.UnmarshalCallEnvelope(body)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	h, ok := s.meths[env.Method]
	s.mu.RUnlock()
	if !ok {
		return nil, &rpc.AppError{Status: dmwire.StatusErr,
			Msg: fmt.Sprintf("liverpc: service %q has no method %q", s.name, env.Method)}
	}
	ctx := &Ctx{Svc: s, From: from, TraceID: env.TraceID, Hop: env.Hop}
	if env.DeadlineMillis > 0 {
		ctx.Deadline = time.Now().Add(time.Duration(env.DeadlineMillis) * time.Millisecond)
	}
	// Inline args alias the request buffer, which outlives the handler
	// (recycled only after the response is written) — no copy here.
	out, err := h(ctx, payloadsFromWire(env.Args, false))
	if err != nil {
		return nil, err
	}
	return dmwire.ReturnEnvelope{Args: payloadsToWire(out)}.Marshal(), nil
}

// Ctx carries one in-flight call's propagation state into its handler.
type Ctx struct {
	// Svc is the service executing the handler.
	Svc *Service
	// From is the transport peer that sent the call.
	From net.Addr
	// TraceID identifies the end-to-end request chain.
	TraceID uint64
	// Hop is this call's nesting depth (0 at the top-level caller).
	Hop uint8
	// Deadline is the propagated absolute deadline (zero when the caller
	// set none).
	Deadline time.Time
}

// Remaining returns the budget left before the propagated deadline
// (a large positive duration when none was set).
func (c *Ctx) Remaining() time.Duration {
	if c.Deadline.IsZero() {
		return time.Duration(int64(^uint64(0) >> 1))
	}
	return time.Until(c.Deadline)
}

// Call issues a nested call to addr, propagating the trace ID,
// incrementing the hop depth, and shrinking the deadline to the
// remaining budget — so a chain's total latency is bounded by the
// top-level caller's single timeout.
func (c *Ctx) Call(addr, method string, args ...Payload) ([]Payload, error) {
	return c.CallOpts(addr, method, CallOpts{}, args...)
}

// CallOpts is Call with explicit options; opts.Timeout is still capped
// by the propagated remaining budget.
func (c *Ctx) CallOpts(addr, method string, opts CallOpts, args ...Payload) ([]Payload, error) {
	if !c.Deadline.IsZero() {
		rem := time.Until(c.Deadline)
		if rem <= 0 {
			return nil, fmt.Errorf("liverpc: %s: %w", method, live.ErrDeadline)
		}
		if opts.Timeout <= 0 || rem < opts.Timeout {
			opts.Timeout = rem
		}
	}
	env := dmwire.CallEnvelope{
		Method:  method,
		TraceID: c.TraceID,
		Hop:     c.Hop + 1,
		Args:    payloadsToWire(args),
	}
	return c.Svc.caller.issue(addr, env, opts)
}

// Stage builds a size-aware payload using the service's threshold and DM
// client (for handlers producing large results).
func (c *Ctx) Stage(data []byte) (Payload, error) { return c.Svc.caller.Stage(data) }

// Fetch materializes a payload at this service (see Caller.Fetch).
func (c *Ctx) Fetch(p Payload) ([]byte, error) { return fetch(c.Svc.caller.dm, p) }

// FetchLease materializes a payload at this service as a leased buffer
// (see Caller.FetchLease); the caller must Release it exactly once.
func (c *Ctx) FetchLease(p Payload) (*live.Buf, error) { return fetchLease(c.Svc.caller.dm, p) }

// Release drops a staged payload's ref hold (see Caller.Release).
func (c *Ctx) Release(p Payload) error { return release(c.Svc.caller.dm, p) }

// Adopt re-owns a ref payload under this service's session: the shared
// frames are mapped (taking this PID's own per-frame holds), re-shared
// as a fresh ref, and the private mapping released. The returned payload
// survives the original producer's death or lease reap — this is the
// ownership-handoff primitive for consumers that persist data beyond the
// call (e.g. a storage service keeping a composed post). Inline payloads
// are copied (they alias a transport buffer). A located ref adopts on
// the shard that stores it and yields a located payload.
func (c *Ctx) Adopt(p Payload) (Payload, error) {
	if !p.IsRef() {
		return Inline(append([]byte(nil), p.Inline()...)), nil
	}
	dmc := c.Svc.caller.dm
	if err := checkRefBackend(dmc, p); err != nil {
		return Payload{}, err
	}
	addr, err := dmc.MapRef(p.Ref())
	if err != nil {
		return Payload{}, err
	}
	own, err := dmc.CreateRef(addr, p.Ref().Size)
	if err != nil {
		dmc.Free(addr)
		return Payload{}, err
	}
	if err := dmc.Free(addr); err != nil {
		return Payload{}, err
	}
	if located(dmc) {
		return ByLocated(own), nil
	}
	return ByRef(own), nil
}

// errLocatedRef is returned when a cluster-addressed (v1) ref payload
// reaches an endpoint whose DM backend only understands connection-local
// server indices — resolving it there would silently read the wrong
// server's pages, so it is refused instead.
var errLocatedRef = fmt.Errorf("liverpc: located ref payload reached a non-cluster DM backend")

// checkRefBackend validates that dmc can resolve ref payload p.
func checkRefBackend(dmc DM, p Payload) error {
	if dmc == nil {
		return errNoDM
	}
	if p.Located() && !located(dmc) {
		return errLocatedRef
	}
	return nil
}

// fetch reads a payload's bytes: inline aliased, refs via read_ref.
func fetch(dmc DM, p Payload) ([]byte, error) {
	if !p.IsRef() {
		return p.Inline(), nil
	}
	if err := checkRefBackend(dmc, p); err != nil {
		return nil, err
	}
	buf := make([]byte, p.Size())
	if rd, ok := dmc.(ReplicatedDM); ok && p.Located() {
		// Failover read: the payload's carried replica hints join the
		// backend's own view of where the copies live.
		if err := rd.ReadRefFrom(p.Ref(), p.Replicas(), 0, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if err := dmc.ReadRef(p.Ref(), 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// fetchLease reads a payload as a leased live.Buf: inline bytes wrapped
// as-is (aliased), refs through the backend's zero-copy ReadRefLease
// when it has one, else a copying ReadRef bridged into the same
// ownership contract.
func fetchLease(dmc DM, p Payload) (*live.Buf, error) {
	if !p.IsRef() {
		return live.WrapBuf(p.Inline()), nil
	}
	if err := checkRefBackend(dmc, p); err != nil {
		return nil, err
	}
	if rd, ok := dmc.(ReplicatedDM); ok && p.Located() {
		return rd.ReadRefLeaseFrom(p.Ref(), p.Replicas(), 0, p.Size())
	}
	if bd, ok := dmc.(BufDM); ok {
		return bd.ReadRefLease(p.Ref(), 0, p.Size())
	}
	buf := make([]byte, p.Size())
	if err := dmc.ReadRef(p.Ref(), 0, buf); err != nil {
		return nil, err
	}
	return live.WrapBuf(buf), nil
}

// release drops a ref payload's hold.
func release(dmc DM, p Payload) error {
	if !p.IsRef() {
		return nil
	}
	if err := checkRefBackend(dmc, p); err != nil {
		return err
	}
	return dmc.FreeRef(p.Ref())
}
