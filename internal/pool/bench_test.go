package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/live"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchCluster spins up k in-process shards and a registered pool.
func benchCluster(b *testing.B, k int) ([]*live.Server, *Client) {
	return benchClusterCfg(b, k, Config{})
}

// benchClusterCfg is benchCluster with explicit pool configuration
// (replica factor, repair pacing).
func benchClusterCfg(b *testing.B, k int, pcfg Config) ([]*live.Server, *Client) {
	b.Helper()
	cfg := live.ServerConfig{NumPages: 4096, PageSize: 4096}
	addrs := make([]string, k)
	srvs := make([]*live.Server, k)
	for i := 0; i < k; i++ {
		srvs[i], addrs[i] = startShard(b, uint32(i), cfg)
	}
	pcfg.Shards = addrs
	p, err := Dial(pcfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		b.Fatal(err)
	}
	return srvs, p
}

// BenchmarkPoolStageThroughput measures aggregate stage bandwidth as the
// cluster grows 1 -> 2 -> 4 shards, weak-scaling style: each shard
// brings its own fixed client population (workersPerShard synchronous
// stagers), as each added server would in a real deployment. A single
// synchronous stager per shard is latency-bound — its round trip is
// mostly syscall and scheduler wakeup gaps — so added shards (each an
// independent connection plus stager) overlap those gaps and aggregate
// bandwidth rises with cluster size. The remap-frac metric is the
// deterministic fraction of the keyspace that would move if one more
// shard joined the ring at that size — the consistent-hashing stability
// cost of the next scale-out step.
func BenchmarkPoolStageThroughput(b *testing.B) {
	const payload = 8 << 10
	const workersPerShard = 1
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			_, p := benchCluster(b, k)
			body := make([]byte, payload)
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workersPerShard*k; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						ref, err := p.StageRef(body)
						if err != nil {
							b.Error(err)
							return
						}
						if err := p.FreeRef(ref); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			r := NewRing(0)
			for id := uint32(0); id < uint32(k); id++ {
				r.Add(id)
			}
			frac := remapFraction(r, 20_000, func() { r.Add(uint32(k)) })
			b.ReportMetric(frac, "remap-frac")
		})
	}
}

// BenchmarkPoolReadRefThroughput measures aggregate by-ref read
// bandwidth under the same weak-scaling population.
func BenchmarkPoolReadRefThroughput(b *testing.B) {
	const payload = 8 << 10
	const workersPerShard = 1
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			_, p := benchCluster(b, k)
			// One resident object per shard; readers fan over them.
			refs := make([]dm.Ref, 0, k)
			for key := uint64(0); len(refs) < k && key < 1<<16; key++ {
				id, _ := p.ring.Lookup(key)
				if int(id) == len(refs) {
					ref, err := p.StageRefKeyed(key, make([]byte, payload))
					if err != nil {
						b.Fatal(err)
					}
					refs = append(refs, ref)
				}
			}
			if len(refs) < k {
				b.Fatalf("could not place one object per shard (%d/%d)", len(refs), k)
			}
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workersPerShard*k; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					dst := make([]byte, payload)
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if err := p.ReadRef(refs[int(i)%len(refs)], 0, dst); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkPoolZipfRead prices the hot-ref cache under the paper's
// skewed-popularity read pattern: 4 closed-loop readers draw from a
// Zipf(s=1.1) distribution over a working set 8x the cache budget, so
// the cache can only win by keeping the hot head resident (TinyLFU
// admission) — it cannot fit the set. The cache=off run is the wire
// baseline; cache=on must beat it on throughput by serving the head
// from memory, and both runs report hit-rate / p50-ns / p99-ns extras
// so BENCH_pool.json records the speedup AND the tail it comes from.
func BenchmarkPoolZipfRead(b *testing.B) {
	const payload = 8 << 10
	const objects = 512 // 4 MiB working set
	const readers = 4
	const cacheBudget = 512 << 10 // ~64 objects: an 8x-oversubscribed cache
	for _, cacheOn := range []bool{false, true} {
		name, cfg := "cache=off", Config{}
		if cacheOn {
			name, cfg = "cache=on", Config{CacheBytes: cacheBudget}
		}
		b.Run(name, func(b *testing.B) {
			_, p := benchClusterCfg(b, 2, cfg)
			refs := make([]dm.Ref, objects)
			for i := range refs {
				ref, err := p.StageRef(make([]byte, payload))
				if err != nil {
					b.Fatal(err)
				}
				refs[i] = ref
			}
			var hist stats.AtomicHistogram
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					z := workload.NewZipf(objects, 1.1, workload.DeriveSeed(1, uint64(w)))
					dst := make([]byte, payload)
					for next.Add(1) <= int64(b.N) {
						start := time.Now()
						if err := p.ReadRef(refs[z.Next()], 0, dst); err != nil {
							b.Error(err)
							return
						}
						hist.Record(time.Since(start).Nanoseconds())
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			h := hist.Snapshot()
			b.ReportMetric(float64(h.Percentile(50)), "p50-ns")
			b.ReportMetric(float64(h.Percentile(99)), "p99-ns")
			var hitRate float64
			if cs := p.CacheStats(); cs.Hits+cs.Misses > 0 {
				hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
			}
			b.ReportMetric(hitRate, "hit-rate")
		})
	}
}

// BenchmarkPoolReplicatedStage prices replication: stage+free cycles on
// the same 3-shard cluster at R=1 (one copy, one round trip) and R=2
// (two pipelined copies of every payload). The R=2 run pays double the
// network and memory per object, so its per-op throughput bounds the
// write-path cost of surviving a shard loss.
func BenchmarkPoolReplicatedStage(b *testing.B) {
	const payload = 8 << 10
	for _, r := range []int{1, 2} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			_, p := benchClusterCfg(b, 3, Config{ReplicaFactor: r, RepairInterval: -1})
			body := make([]byte, payload)
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						ref, err := p.StageRef(body)
						if err != nil {
							b.Error(err)
							return
						}
						if err := p.FreeRef(ref); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkPoolRepair measures self-healing: each iteration stages a
// population of replicated refs on 3 shards, ejects one shard, and times
// the repairer restoring full R=2 replication on the survivors. The
// repair-secs extra is the convergence time of the last iteration and
// under-replicated-max the gauge's peak right after the ejection (the
// backlog size) — both recorded to BENCH_pool.json, where a repair-path
// regression shows up as a perf regression, not a silent behavior change.
func BenchmarkPoolRepair(b *testing.B) {
	const payload, objects = 8 << 10, 32
	const victim = 2
	_, p := benchClusterCfg(b, 3, Config{
		ReplicaFactor:     2,
		RepairInterval:    5 * time.Millisecond,
		RepairBytesPerSec: -1, // measure the mechanism, not the throttle
	})
	body := make([]byte, payload)
	var repairSecs, underMax float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		refs := make([]dm.Ref, objects)
		for j := range refs {
			ref, err := p.StageRef(body)
			if err != nil {
				b.Fatal(err)
			}
			refs[j] = ref
		}
		b.StartTimer()

		// Eject the victim the way the health monitor would.
		p.shards[victim].healthy.Store(false)
		p.ring.Remove(victim)
		start := time.Now()
		backlog := p.UnderReplicated()
		p.kickRepair()
		for p.UnderReplicated() > 0 {
			if time.Since(start) > 30*time.Second {
				b.Fatal("repair did not converge")
			}
			time.Sleep(200 * time.Microsecond)
		}
		repairSecs = time.Since(start).Seconds()
		underMax = float64(backlog)

		b.StopTimer()
		// Readmit the shard (its copies are intact — this was a ring
		// ejection, not a crash) and drain the population.
		p.ring.Add(victim)
		p.shards[victim].healthy.Store(true)
		for _, ref := range refs {
			if err := p.FreeRef(ref); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(repairSecs, "repair-secs")
	b.ReportMetric(underMax, "under-replicated-max")
}

// BenchmarkPoolRebalance measures live migration (DESIGN.md §D16): a
// population is staged at R=2 while shard 3 sits outside the ring, then
// the shard is readmitted — the join — and the timed section is the
// rebalancer converging every remapped ref onto its new ring placement:
// copy to the newcomer, registry flip, surplus reclaim. migrate-secs is
// the last iteration's convergence time, moved-bytes the payload volume
// it staged, and remap-frac-after the off-placement fraction left when
// the audit settles (~0 — the acceptance gate for the zero-leak,
// zero-loss join). All three land in BENCH_pool.json, so a migration
// regression shows up as a perf regression.
func BenchmarkPoolRebalance(b *testing.B) {
	const payload, objects = 8 << 10, 64
	const joiner = 3
	_, p := benchClusterCfg(b, 4, Config{
		ReplicaFactor:     2,
		RepairInterval:    5 * time.Millisecond,
		RepairBytesPerSec: -1, // measure the mechanism, not the throttle
		RegistryHandoff:   true,
	})
	eject := func() {
		p.shardList()[joiner].healthy.Store(false)
		p.ring.Remove(joiner)
	}
	readmit := func() {
		p.shardList()[joiner].healthy.Store(true)
		p.ring.Add(joiner)
		p.kickRepair()
	}
	eject() // the population below must be placed on shards 0-2 only
	body := make([]byte, payload)
	var migrateSecs, movedBytes, remapFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		refs := make([]dm.Ref, objects)
		for j := range refs {
			ref, err := p.StageRef(body)
			if err != nil {
				b.Fatal(err)
			}
			refs[j] = ref
		}
		bytesBefore := p.MigratedBytes()
		b.StartTimer()

		readmit()
		start := time.Now()
		for {
			total, off := p.AuditPlacement()
			if total > 0 && off == 0 && p.UnderReplicated() == 0 {
				remapFrac = float64(off) / float64(total)
				break
			}
			if time.Since(start) > 30*time.Second {
				b.Fatalf("rebalance did not converge: %d/%d off placement", off, total)
			}
			time.Sleep(200 * time.Microsecond)
		}
		migrateSecs = time.Since(start).Seconds()
		movedBytes = float64(p.MigratedBytes() - bytesBefore)

		b.StopTimer()
		for _, ref := range refs {
			if err := p.FreeRef(ref); err != nil {
				b.Fatal(err)
			}
		}
		eject() // next iteration stages on 3 shards again
		b.StartTimer()
	}
	b.ReportMetric(migrateSecs, "migrate-secs")
	b.ReportMetric(movedBytes, "moved-bytes")
	b.ReportMetric(remapFrac, "remap-frac-after")
}
