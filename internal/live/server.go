// Package live is a real-network implementation of the DmRPC-net
// disaggregated memory protocol (internal/dmwire) over TCP: a DM server
// holding a pinned page pool with page-granular copy-on-write, and a
// client exposing the paper's Table II API (ralloc/rfree/create_ref/
// map_ref/rread/rwrite) plus the fused stage/read-by-ref fast paths.
//
// It exists so the library is usable outside the simulator: the simulated
// backend (internal/dmnet) validates the paper's performance claims under
// a calibrated cost model, while this package provides the same semantics
// on real sockets. Both speak the identical wire protocol, enforced by
// shared codecs and by cross-checked tests.
//
// Concurrency model: one goroutine per connection, one goroutine per
// request, a single mutex over the page manager. That is deliberately
// simple — correctness first; the scaling story is measured in simulation.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Frame layout: length-prefixed messages on a TCP stream.
//
//	u32 payloadLen | u8 kind | u64 reqID | payload
//	request payload:  u16 method | body
//	response payload: u8 status  | body
const (
	frameHeaderSize = 4 + 1 + 8
	kindRequest     = 1
	kindResponse    = 2
)

// MaxMessageSize bounds one frame's payload (guards against corrupt
// length prefixes).
const MaxMessageSize = 64 << 20

// errFrameTooLarge reports a corrupt or hostile length prefix.
var errFrameTooLarge = errors.New("live: frame exceeds maximum message size")

// writeFrame writes one frame; the caller serializes writers per conn.
func writeFrame(w io.Writer, kind byte, reqID uint64, payload []byte) error {
	hdr := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = kind
	binary.BigEndian.PutUint64(hdr[5:], reqID)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (kind byte, reqID uint64, payload []byte, err error) {
	hdr := make([]byte, frameHeaderSize)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxMessageSize {
		return 0, 0, nil, errFrameTooLarge
	}
	kind = hdr[4]
	reqID = binary.BigEndian.Uint64(hdr[5:])
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return kind, reqID, payload, nil
}

// ServerConfig sizes a live DM server.
type ServerConfig struct {
	// NumPages is the pinned pool size in pages.
	NumPages int
	// PageSize is the page granularity in bytes.
	PageSize int
}

// DefaultServerConfig returns a 256 MiB pool of 4 KiB pages.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{NumPages: 1 << 16, PageSize: 4096}
}

// Validate reports a configuration error, if any.
func (c ServerConfig) Validate() error {
	if c.NumPages <= 0 || c.PageSize <= 0 {
		return fmt.Errorf("live: NumPages and PageSize must be positive")
	}
	return nil
}

// Server is a live DM server: the paper's page manager and address
// translator over real memory and TCP.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	pool    []byte
	refcnt  []int32
	free    []int32 // FIFO of free frames
	vas     map[uint32]*dm.VAAllocator
	trans   map[transKey]int32
	refs    map[uint64]*refEntry
	nextPID uint32
	nextKey uint64

	node *Node
}

type transKey struct {
	pid   uint32
	vpage uint64
}

type refEntry struct {
	frames []int32
	size   int64
}

// NewServer builds a server with an allocated (and thereby "pinned") pool.
func NewServer(cfg ServerConfig) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Server{
		cfg:    cfg,
		pool:   make([]byte, cfg.NumPages*cfg.PageSize),
		refcnt: make([]int32, cfg.NumPages),
		free:   make([]int32, cfg.NumPages),
		vas:    make(map[uint32]*dm.VAAllocator),
		trans:  make(map[transKey]int32),
		refs:   make(map[uint64]*refEntry),
		node:   NewNode(),
	}
	for i := range s.free {
		s.free[i] = int32(i)
	}
	for _, m := range []rpc.Method{
		dmwire.MRegister, dmwire.MAlloc, dmwire.MFree, dmwire.MCreateRef,
		dmwire.MMapRef, dmwire.MFreeRef, dmwire.MRead, dmwire.MWrite,
		dmwire.MStage, dmwire.MReadRef,
	} {
		m := m
		s.node.Handle(m, func(from net.Addr, body []byte) ([]byte, error) {
			return s.handle(m, body)
		})
	}
	return s
}

// Serve accepts connections on ln until Close. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error { return s.node.Serve(ln) }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error { return s.node.Close() }

// FreePages returns the number of free frames (tests, monitoring).
func (s *Server) FreePages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// LiveRefs returns the number of outstanding refs.
func (s *Server) LiveRefs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.refs)
}

// methodOf converts a raw wire value to an rpc.Method (fuzzing hook).
func methodOf(m uint16) rpc.Method { return rpc.Method(m) }

// dispatch runs one DM operation and returns (status, response body);
// kept as a direct entry point for fuzzing the page manager.
func (s *Server) dispatch(m rpc.Method, body []byte) (byte, []byte) {
	resp, err := s.handle(m, body)
	if err != nil {
		return dmwire.StatusOf(err), []byte(err.Error())
	}
	return dmwire.StatusOK, resp
}

func (s *Server) handle(m rpc.Method, body []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m {
	case dmwire.MRegister:
		return s.register()
	case dmwire.MAlloc:
		return s.alloc(body)
	case dmwire.MFree:
		return s.freeRegion(body)
	case dmwire.MCreateRef:
		return s.createRef(body)
	case dmwire.MMapRef:
		return s.mapRef(body)
	case dmwire.MFreeRef:
		return s.freeRef(body)
	case dmwire.MRead:
		return s.read(body)
	case dmwire.MWrite:
		return s.write(body)
	case dmwire.MStage:
		return s.stage(body)
	case dmwire.MReadRef:
		return s.readRef(body)
	default:
		return nil, errNoSuchMethod
	}
}

func (s *Server) pageSize() int64 { return int64(s.cfg.PageSize) }

func (s *Server) frame(f int32) []byte {
	off := int(f) * s.cfg.PageSize
	return s.pool[off : off+s.cfg.PageSize : off+s.cfg.PageSize]
}

func (s *Server) popFrame() (int32, bool) {
	if len(s.free) == 0 {
		return -1, false
	}
	f := s.free[0]
	s.free = s.free[1:]
	return f, true
}

// --- operations (all run under s.mu) ---

func (s *Server) register() ([]byte, error) {
	pid := s.nextPID
	s.nextPID++
	s.vas[pid] = dm.NewVAAllocator(s.cfg.PageSize, 1<<16, 1<<40)
	return dmwire.RegisterResp{PID: pid}.Marshal(), nil
}

func (s *Server) va(pid uint32) (*dm.VAAllocator, error) {
	va, ok := s.vas[pid]
	if !ok {
		return nil, dm.ErrBadAddress
	}
	return va, nil
}

func (s *Server) alloc(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalAllocReq(body)
	if err != nil {
		return nil, err
	}
	va, err := s.va(req.PID)
	if err != nil {
		return nil, err
	}
	addr, err := va.Alloc(req.Size)
	if err != nil {
		return nil, err
	}
	return dmwire.AllocResp{Addr: addr}.Marshal(), nil
}

func (s *Server) freeRegion(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeReq(body)
	if err != nil {
		return nil, err
	}
	va, err := s.va(req.PID)
	if err != nil {
		return nil, err
	}
	size, err := va.Free(req.Addr)
	if err != nil {
		return nil, err
	}
	pages := dm.PageCount(size, s.cfg.PageSize)
	if pages == 0 {
		pages = 1
	}
	base := uint64(req.Addr) / uint64(s.pageSize())
	for i := 0; i < pages; i++ {
		key := transKey{pid: req.PID, vpage: base + uint64(i)}
		f, ok := s.trans[key]
		if !ok {
			continue
		}
		delete(s.trans, key)
		s.decRef(f)
	}
	return nil, nil
}

// decRef drops one reference and reclaims the frame at zero.
func (s *Server) decRef(f int32) {
	s.refcnt[f]--
	if s.refcnt[f] < 0 {
		panic(fmt.Sprintf("live: frame %d refcount negative", f))
	}
	if s.refcnt[f] == 0 {
		s.free = append(s.free, f)
	}
}

// materialize backs (pid, vpage) with a zeroed frame on first touch.
func (s *Server) materialize(key transKey) (int32, error) {
	if f, ok := s.trans[key]; ok {
		return f, nil
	}
	f, ok := s.popFrame()
	if !ok {
		return -1, dm.ErrOutOfMemory
	}
	fr := s.frame(f)
	for i := range fr {
		fr[i] = 0
	}
	s.refcnt[f] = 1
	s.trans[key] = f
	return f, nil
}

func (s *Server) checkRange(pid uint32, addr dm.RemoteAddr, size int64) error {
	va, err := s.va(pid)
	if err != nil {
		return err
	}
	base, regSize, err := va.Lookup(addr)
	if err != nil {
		return err
	}
	extent := int64(dm.PageCount(regSize, s.cfg.PageSize)) * s.pageSize()
	if extent == 0 {
		extent = s.pageSize()
	}
	if int64(addr)-int64(base)+size > extent {
		return dm.ErrOutOfRange
	}
	return nil
}

func (s *Server) createRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalCreateRefReq(body)
	if err != nil {
		return nil, err
	}
	if req.Size <= 0 {
		return nil, dm.ErrOutOfRange
	}
	if err := s.checkRange(req.PID, req.Addr, req.Size); err != nil {
		return nil, err
	}
	basePage := uint64(req.Addr) / uint64(s.pageSize())
	pages := dm.PageCount(int64(uint64(req.Addr)%uint64(s.pageSize()))+req.Size, s.cfg.PageSize)
	frames := make([]int32, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := s.materialize(transKey{pid: req.PID, vpage: basePage + uint64(i)})
		if err != nil {
			return nil, err
		}
		s.refcnt[f]++ // the ref's own hold; makes the pages CoW-protected
		frames = append(frames, f)
	}
	key := s.nextKey
	s.nextKey++
	s.refs[key] = &refEntry{frames: frames, size: req.Size}
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

func (s *Server) mapRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalMapRefReq(body)
	if err != nil {
		return nil, err
	}
	va, err := s.va(req.PID)
	if err != nil {
		return nil, err
	}
	ref, ok := s.refs[req.Key]
	if !ok {
		return nil, dm.ErrBadRef
	}
	addr, err := va.Alloc(ref.size)
	if err != nil {
		return nil, err
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	for i, f := range ref.frames {
		s.trans[transKey{pid: req.PID, vpage: basePage + uint64(i)}] = f
		s.refcnt[f]++
	}
	return dmwire.MapRefResp{Addr: addr, Size: ref.size}.Marshal(), nil
}

func (s *Server) freeRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeRefReq(body)
	if err != nil {
		return nil, err
	}
	ref, ok := s.refs[req.Key]
	if !ok {
		return nil, dm.ErrBadRef
	}
	delete(s.refs, req.Key)
	for _, f := range ref.frames {
		s.decRef(f)
	}
	return nil, nil
}

func (s *Server) read(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadReq(body)
	if err != nil {
		return nil, err
	}
	size := int64(req.Size)
	if err := s.checkRange(req.PID, req.Addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	off := int64(0)
	for off < size {
		vpage := (uint64(req.Addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(req.Addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		if f, ok := s.trans[transKey{pid: req.PID, vpage: vpage}]; ok {
			copy(out[off:off+n], s.frame(f)[pageOff:])
		}
		off += n
	}
	return out, nil
}

func (s *Server) write(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalWriteReq(body)
	if err != nil {
		return nil, err
	}
	size := int64(len(req.Data))
	if err := s.checkRange(req.PID, req.Addr, size); err != nil {
		return nil, err
	}
	off := int64(0)
	for off < size {
		vpage := (uint64(req.Addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(req.Addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		f, err := s.writableFrame(transKey{pid: req.PID, vpage: vpage})
		if err != nil {
			return nil, err
		}
		copy(s.frame(f)[pageOff:], req.Data[off:off+n])
		off += n
	}
	return nil, nil
}

// writableFrame runs the copy-on-write protocol of §V-A2.
func (s *Server) writableFrame(key transKey) (int32, error) {
	f, err := s.materialize(key)
	if err != nil {
		return -1, err
	}
	if s.refcnt[f] > 1 {
		nf, ok := s.popFrame()
		if !ok {
			return -1, dm.ErrOutOfMemory
		}
		copy(s.frame(nf), s.frame(f))
		s.refcnt[f]--
		s.refcnt[nf] = 1
		s.trans[key] = nf
		f = nf
	}
	return f, nil
}

func (s *Server) stage(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalStageReq(body)
	if err != nil {
		return nil, err
	}
	if len(req.Data) == 0 {
		return nil, dm.ErrOutOfRange
	}
	pages := dm.PageCount(int64(len(req.Data)), s.cfg.PageSize)
	frames := make([]int32, 0, pages)
	for i := 0; i < pages; i++ {
		f, ok := s.popFrame()
		if !ok {
			for _, g := range frames {
				s.free = append(s.free, g)
			}
			return nil, dm.ErrOutOfMemory
		}
		lo := i * s.cfg.PageSize
		hi := lo + s.cfg.PageSize
		if hi > len(req.Data) {
			hi = len(req.Data)
		}
		fr := s.frame(f)
		n := copy(fr, req.Data[lo:hi])
		for j := n; j < len(fr); j++ {
			fr[j] = 0
		}
		s.refcnt[f] = 1
		frames = append(frames, f)
	}
	key := s.nextKey
	s.nextKey++
	s.refs[key] = &refEntry{frames: frames, size: int64(len(req.Data))}
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

func (s *Server) readRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadRefReq(body)
	if err != nil {
		return nil, err
	}
	ref, ok := s.refs[req.Key]
	if !ok {
		return nil, dm.ErrBadRef
	}
	off, size := int64(req.Off), int64(req.Size)
	if off < 0 || size < 0 || off+size > ref.size {
		return nil, dm.ErrOutOfRange
	}
	out := make([]byte, size)
	pos := int64(0)
	for pos < size {
		page := int((off + pos) / s.pageSize())
		pageOff := (off + pos) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-pos {
			n = size - pos
		}
		copy(out[pos:pos+n], s.frame(ref.frames[page])[pageOff:])
		pos += n
	}
	return out, nil
}

// CheckInvariants validates the page manager bookkeeping (tests only).
func (s *Server) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	holds := make(map[int32]int32)
	for _, f := range s.trans {
		holds[f]++
	}
	for _, ref := range s.refs {
		for _, f := range ref.frames {
			holds[f]++
		}
	}
	for f, want := range holds {
		if s.refcnt[f] != want {
			return fmt.Errorf("frame %d refcount %d, want %d", f, s.refcnt[f], want)
		}
	}
	freeSet := make(map[int32]bool, len(s.free))
	for _, f := range s.free {
		if freeSet[f] {
			return fmt.Errorf("frame %d free twice", f)
		}
		freeSet[f] = true
		if holds[f] != 0 {
			return fmt.Errorf("frame %d free but held", f)
		}
	}
	if len(freeSet)+len(holds) != s.cfg.NumPages {
		return fmt.Errorf("frames leak: %d free + %d held != %d", len(freeSet), len(holds), s.cfg.NumPages)
	}
	return nil
}
