// Package migrate is the DM pool's live migration engine (DESIGN.md
// §D16): the planner diffs current replica placement against the ring's
// wanted placement and emits a bounded plan; the executor copies
// payloads shard-to-shard, flips the registry entry, and only then
// reclaims surplus replicas — fixing the repair-only-adds leak while
// preserving the zero-loss invariant (at every instant each ref is
// readable from at least one shard, and reads fail over through both
// old and new locations for the duration of the window).
//
// The package is deliberately transport-free: it drives an abstract
// ShardOps (the pool client adapts itself behind it), so the state
// machine is unit-testable against an in-memory fake and never imports
// live or pool.
//
// Move state machine, per ref:
//
//	COPY    stage the payload onto every wanted shard missing a copy
//	        (dm.ErrRefExists from a racing repairer counts as success)
//	VERIFY  before any reclaim, prove every wanted shard really holds
//	        the payload — a 1-byte probe read, re-staging on a miss;
//	        if any wanted copy cannot be confirmed the drops are
//	        skipped (surplus is a leak, loss is forever)
//	FLIP    publish the new placement to the wanted shards' registry
//	        slices at a bumped epoch, so the directory points at the
//	        new copies before the old ones disappear
//	DROP    free the surplus replicas; each free also retires that
//	        shard's directory entry
//
// Copies are paced against a bytes/sec budget between moves so a large
// backlog cannot starve foreground traffic.
package migrate

import (
	"errors"
	"time"

	"repro/internal/dm"
	"repro/internal/registry"
)

// Placement is one ref's current believed placement — the planner's
// input, typically a snapshot of the pool client's tracked refs or a
// shard registry page.
type Placement struct {
	Key   uint64
	Size  int64
	Epoch uint64
	// Have lists the shards believed to hold a copy, primary first.
	Have []uint32
}

// Move is one planned ref migration.
type Move struct {
	Key   uint64
	Size  int64
	Epoch uint64
	// Want is the full wanted replica set (ring successors), in ring
	// order — the placement the registry flip publishes.
	Want []uint32
	// Sources are shards believed to hold a copy now (= Placement.Have);
	// the executor reads from the first healthy one.
	Sources []uint32
	// CopyTo are wanted shards missing a copy.
	CopyTo []uint32
	// DropFrom are surplus shards holding a copy outside the wanted set.
	DropFrom []uint32
}

// Limits bounds one plan so a migration can be chunked across passes;
// zero values mean unbounded.
type Limits struct {
	// MaxMoves caps the number of moves emitted.
	MaxMoves int
	// MaxBytes caps the planned copy volume (size x new copies).
	MaxBytes int64
}

// Plan diffs each placement against want(key) and emits the moves that
// would converge them, bounded by lim. Refs already on their wanted
// shards (and nothing else) produce no move. The input order is
// preserved, so a caller that sorts by key gets deterministic chunking
// across passes.
func Plan(cur []Placement, want func(key uint64) []uint32, lim Limits) []Move {
	var moves []Move
	var plannedBytes int64
	for _, pl := range cur {
		w := want(pl.Key)
		if len(w) == 0 {
			continue // no members to place on; nothing sane to do
		}
		haveSet := make(map[uint32]struct{}, len(pl.Have))
		for _, id := range pl.Have {
			haveSet[id] = struct{}{}
		}
		wantSet := make(map[uint32]struct{}, len(w))
		var copyTo []uint32
		for _, id := range w {
			wantSet[id] = struct{}{}
			if _, has := haveSet[id]; !has {
				copyTo = append(copyTo, id)
			}
		}
		var dropFrom []uint32
		for _, id := range pl.Have {
			if _, wanted := wantSet[id]; !wanted {
				dropFrom = append(dropFrom, id)
			}
		}
		if len(copyTo) == 0 && len(dropFrom) == 0 {
			continue
		}
		moves = append(moves, Move{
			Key:      pl.Key,
			Size:     pl.Size,
			Epoch:    pl.Epoch,
			Want:     append([]uint32(nil), w...),
			Sources:  append([]uint32(nil), pl.Have...),
			CopyTo:   copyTo,
			DropFrom: dropFrom,
		})
		plannedBytes += pl.Size * int64(len(copyTo))
		if lim.MaxMoves > 0 && len(moves) >= lim.MaxMoves {
			break
		}
		if lim.MaxBytes > 0 && plannedBytes >= lim.MaxBytes {
			break
		}
	}
	return moves
}

// ShardOps is the executor's view of the cluster — implemented by the
// pool client (shard-to-shard copy via staged re-put) and by test
// fakes. Shard IDs are cluster-wide.
type ShardOps interface {
	// Healthy reports whether the shard is believed alive; the executor
	// never stages onto, probes, or frees from an unhealthy shard.
	Healthy(shard uint32) bool
	// ReadRef reads [off, off+len(dst)) of key's payload from shard.
	ReadRef(shard uint32, key uint64, size int64, off int64, dst []byte) error
	// StageAt places data under key on shard; dm.ErrRefExists means a
	// copy is already there (success for migration purposes).
	StageAt(shard uint32, key uint64, data []byte) error
	// FreeRef releases key's copy (and directory entry) on shard;
	// dm.ErrBadRef means the copy was already gone.
	FreeRef(shard uint32, key uint64) error
	// RegPut merges a directory entry into shard's registry slice.
	RegPut(shard uint32, ent registry.Entry) error
}

// Executor runs a plan against ShardOps.
type Executor struct {
	Ops ShardOps
	// BytesPerSec paces copies between moves (0 = unpaced).
	BytesPerSec int64
	// Stop aborts the run between moves when closed.
	Stop <-chan struct{}
	// Registry enables the FLIP step: publish the new placement (at
	// Epoch+1) to every wanted shard before dropping surplus copies.
	Registry bool
	// Skip, when set, is consulted immediately before each move runs; a
	// true return drops the move. Plans are snapshots, so the caller
	// uses this to fence refs freed after planning — without it a stale
	// move would resurrect a freed ref by re-staging its payload.
	Skip func(key uint64) bool

	// OnCopied, when set, fires for each wanted shard confirmed to hold
	// a copy this move — fresh reports whether the executor staged the
	// bytes (false: a racing repairer had already landed them).
	OnCopied func(key uint64, shard uint32, size int64, fresh bool)
	// OnDropped fires for each surplus replica reclaimed.
	OnDropped func(key uint64, shard uint32)
	// OnFlip fires after the registry placement flip for a move.
	OnFlip func(key uint64, epoch uint64, want []uint32)
	// OnUnreadable fires when a move needed the payload and EVERY source
	// answered dm.ErrBadRef — the copies are provably gone (freed by
	// another client), not merely unreachable. The caller can then scrub
	// the ref from its work list; transport errors never trigger this.
	OnUnreadable func(key uint64)
}

// Result summarizes one executed plan.
type Result struct {
	// MovedRefs counts refs that both gained a wanted copy and shed a
	// surplus one — true migrations, not mere repairs or reclaims.
	MovedRefs int
	// MovedBytes counts payload bytes staged during those migrations.
	MovedBytes int64
	// CopiedReplicas counts wanted copies confirmed (staged or found).
	CopiedReplicas int
	// CopiedBytes counts payload bytes the executor actually staged.
	CopiedBytes int64
	// ReclaimedReplicas counts surplus copies freed.
	ReclaimedReplicas int
	// SkippedDrops counts surplus copies retained because a wanted copy
	// could not be verified (the zero-loss guard).
	SkippedDrops int
	// Errors counts failed reads, stages, frees and flips.
	Errors int
}

// Run executes the plan move by move. It returns early (with the
// partial result) when Stop closes.
func (e *Executor) Run(moves []Move) Result {
	var res Result
	for _, mv := range moves {
		select {
		case <-e.stopC():
			return res
		default:
		}
		if e.Skip != nil && e.Skip(mv.Key) {
			continue
		}
		staged := e.runMove(mv, &res)
		if e.BytesPerSec > 0 && staged > 0 {
			d := time.Duration(float64(staged) / float64(e.BytesPerSec) * float64(time.Second))
			t := time.NewTimer(d)
			select {
			case <-e.stopC():
				t.Stop()
				return res
			case <-t.C:
			}
		}
	}
	return res
}

// stopC returns the stop channel (nil-safe: a nil Stop never fires).
func (e *Executor) stopC() <-chan struct{} { return e.Stop }

// runMove executes one move and returns the bytes staged (for pacing).
func (e *Executor) runMove(mv Move, res *Result) int64 {
	// COPY: land the payload on every wanted shard missing it.
	// confirmed tracks wanted shards proven to hold a copy this move.
	confirmed := make(map[uint32]bool, len(mv.Want))
	var staged int64
	var payload []byte
	load := func() bool {
		if payload != nil {
			return true
		}
		buf := make([]byte, mv.Size)
		gone := true // every source so far answered ErrBadRef
		tried := 0
		for _, src := range e.healthyFirst(mv.Sources) {
			tried++
			err := e.Ops.ReadRef(src, mv.Key, mv.Size, 0, buf)
			if err == nil {
				payload = buf
				return true
			}
			if !errors.Is(err, dm.ErrBadRef) {
				gone = false
			}
		}
		if gone && tried > 0 && e.OnUnreadable != nil {
			e.OnUnreadable(mv.Key)
		}
		return false
	}
	if len(mv.CopyTo) > 0 {
		if !e.anyHealthy(mv.Sources) {
			return 0 // nothing live to copy from; retry next pass
		}
		if !load() {
			res.Errors++
			return 0
		}
		for _, tgt := range mv.CopyTo {
			if !e.Ops.Healthy(tgt) {
				continue
			}
			switch err := e.Ops.StageAt(tgt, mv.Key, payload); {
			case err == nil:
				staged += mv.Size
				res.CopiedBytes += mv.Size
				confirmed[tgt] = true
				res.CopiedReplicas++
				if e.OnCopied != nil {
					e.OnCopied(mv.Key, tgt, mv.Size, true)
				}
			case errors.Is(err, dm.ErrRefExists):
				confirmed[tgt] = true
				res.CopiedReplicas++
				if e.OnCopied != nil {
					e.OnCopied(mv.Key, tgt, mv.Size, false)
				}
			default:
				res.Errors++
			}
		}
	}
	if len(mv.DropFrom) == 0 {
		return staged
	}

	// VERIFY: reclaim is irreversible, so every wanted copy must be
	// proven before any surplus copy is freed. Shards just staged are
	// proven; believed copies get a 1-byte probe (re-staged on a miss —
	// the belief may be stale after a silent shard restart). Probes only
	// run when there is something to drop, so the steady state pays
	// nothing.
	probe := make([]byte, 1)
	for _, id := range mv.Want {
		if confirmed[id] {
			continue
		}
		if !e.Ops.Healthy(id) {
			res.SkippedDrops += len(mv.DropFrom)
			return staged
		}
		n := int64(len(probe))
		if mv.Size < n {
			n = mv.Size
		}
		if err := e.Ops.ReadRef(id, mv.Key, mv.Size, 0, probe[:n]); err == nil {
			confirmed[id] = true
			continue
		}
		if !load() {
			res.Errors++
			res.SkippedDrops += len(mv.DropFrom)
			return staged
		}
		switch err := e.Ops.StageAt(id, mv.Key, payload); {
		case err == nil:
			staged += mv.Size
			res.CopiedBytes += mv.Size
			confirmed[id] = true
			res.CopiedReplicas++
			if e.OnCopied != nil {
				e.OnCopied(mv.Key, id, mv.Size, true)
			}
		case errors.Is(err, dm.ErrRefExists):
			confirmed[id] = true
		default:
			res.Errors++
			res.SkippedDrops += len(mv.DropFrom)
			return staged
		}
	}

	// FLIP: point the directory at the new placement before the old
	// copies disappear — a reader racing the drop resolves either the
	// old location (copy still there) or the new one (already staged).
	epoch := mv.Epoch + 1
	if e.Registry {
		for _, id := range mv.Want {
			if !e.Ops.Healthy(id) {
				continue
			}
			if err := e.Ops.RegPut(id, registry.Entry{
				Key: mv.Key, Size: mv.Size, Epoch: epoch, Replicas: mv.Want,
			}); err != nil {
				res.Errors++
			}
		}
	}
	if e.OnFlip != nil {
		e.OnFlip(mv.Key, epoch, mv.Want)
	}

	// DROP: reclaim the surplus. A copy already gone (ErrBadRef) still
	// counts as reclaimed — someone beat us to it.
	dropped := 0
	for _, id := range mv.DropFrom {
		if !e.Ops.Healthy(id) {
			res.SkippedDrops++
			continue // an unreachable shard's copy is reclaimed after rejoin
		}
		switch err := e.Ops.FreeRef(id, mv.Key); {
		case err == nil, errors.Is(err, dm.ErrBadRef):
			dropped++
			res.ReclaimedReplicas++
			if e.OnDropped != nil {
				e.OnDropped(mv.Key, id)
			}
		default:
			res.Errors++
		}
	}
	if dropped > 0 && len(mv.CopyTo) > 0 {
		res.MovedRefs++
		res.MovedBytes += staged
	}
	return staged
}

// healthyFirst orders ids healthy-first, preserving relative order
// within each class; an "unhealthy" source is still worth trying last
// (ejection is a heartbeat verdict, not proof of death).
func (e *Executor) healthyFirst(ids []uint32) []uint32 {
	out := make([]uint32, 0, len(ids))
	var sick []uint32
	for _, id := range ids {
		if e.Ops.Healthy(id) {
			out = append(out, id)
		} else {
			sick = append(sick, id)
		}
	}
	return append(out, sick...)
}

func (e *Executor) anyHealthy(ids []uint32) bool {
	for _, id := range ids {
		if e.Ops.Healthy(id) {
			return true
		}
	}
	return false
}
