// Package faultnet wraps net.Conn and net.Listener with deterministic,
// script-controlled fault injection: added latency, read/write stalls,
// mid-stream connection resets after a byte budget, truncated writes, and
// full partitions. It exists so the live DM path's failure handling
// (internal/live: leases, deadlines, retries, dedup) can be driven through
// real sockets exhibiting the failures a datacenter actually produces —
// without flaky sleeps or OS-level tricks.
//
// An Injector is shared by every connection it wraps; its zero value is
// transparent. All knobs are safe for concurrent use and take effect on
// the next I/O operation, so tests can flip faults while traffic is in
// flight.
package faultnet

import (
	"net"
	"sync"
	"time"
)

// Injector scripts faults for the connections it wraps.
type Injector struct {
	mu          sync.Mutex
	readDelay   time.Duration
	writeDelay  time.Duration
	stalled     bool
	unstall     chan struct{} // closed by Unstall; recreated by Stall
	cutBudget   int64         // >=0: bytes (either direction) until reset; -1: disarmed
	truncNext   bool
	partitioned bool
	conns       map[*Conn]struct{}
}

// New returns a transparent injector.
func New() *Injector {
	return &Injector{cutBudget: -1, conns: make(map[*Conn]struct{})}
}

// SetReadDelay adds d of latency before every Read returns data.
func (i *Injector) SetReadDelay(d time.Duration) {
	i.mu.Lock()
	i.readDelay = d
	i.mu.Unlock()
}

// SetWriteDelay adds d of latency before every Write.
func (i *Injector) SetWriteDelay(d time.Duration) {
	i.mu.Lock()
	i.writeDelay = d
	i.mu.Unlock()
}

// Stall blocks every Read and Write on wrapped connections until Unstall
// or the connection is closed. The peer sees an open, silent endpoint —
// the "accepting-but-dead" server failure mode.
func (i *Injector) Stall() {
	i.mu.Lock()
	if !i.stalled {
		i.stalled = true
		i.unstall = make(chan struct{})
	}
	i.mu.Unlock()
}

// Unstall releases every I/O blocked by Stall.
func (i *Injector) Unstall() {
	i.mu.Lock()
	i.unstallLocked()
	i.mu.Unlock()
}

func (i *Injector) unstallLocked() {
	if i.stalled {
		i.stalled = false
		close(i.unstall)
	}
}

// CutAfter arms a byte budget: once n more bytes have crossed wrapped
// connections (reads and writes combined), the connection that crosses
// the budget is closed abruptly — a mid-frame reset. Pass n=0 to cut on
// the very next I/O.
func (i *Injector) CutAfter(n int64) {
	i.mu.Lock()
	i.cutBudget = n
	i.mu.Unlock()
}

// TruncateNextWrite makes the next Write send only half its bytes and
// then close the connection, leaving a torn frame on the peer's stream.
func (i *Injector) TruncateNextWrite() {
	i.mu.Lock()
	i.truncNext = true
	i.mu.Unlock()
}

// Partition severs the link: every currently wrapped connection is closed
// immediately, and until Heal every newly accepted or dialed connection
// is closed on arrival. This is the SIGKILL/fabric-loss simulation — the
// peer observes resets, never graceful shutdowns.
func (i *Injector) Partition() {
	i.mu.Lock()
	i.partitioned = true
	conns := make([]*Conn, 0, len(i.conns))
	for c := range i.conns {
		conns = append(conns, c)
	}
	i.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal ends a Partition; existing connections stay dead, new ones pass.
// It also releases any active Stall: a healed link must carry fresh dials,
// and a stall gate that outlives the partition would silently wedge them
// (tests used to need a manual Unstall before Heal).
func (i *Injector) Heal() {
	i.mu.Lock()
	i.partitioned = false
	i.unstallLocked()
	i.mu.Unlock()
}

// Conn wraps c; all I/O flows through the injector's faults.
func (i *Injector) Conn(c net.Conn) net.Conn {
	fc := &Conn{Conn: c, inj: i, closed: make(chan struct{})}
	i.mu.Lock()
	dead := i.partitioned
	if !dead {
		i.conns[fc] = struct{}{}
	}
	i.mu.Unlock()
	if dead {
		fc.Close()
	}
	return fc
}

// Listener wraps ln so every accepted connection is fault-injected.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// Conn is one fault-injected connection.
type Conn struct {
	net.Conn
	inj    *Injector
	once   sync.Once
	closed chan struct{}
}

// Close closes the underlying connection and unblocks stalled I/O.
func (c *Conn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		close(c.closed)
		c.inj.mu.Lock()
		delete(c.inj.conns, c)
		c.inj.mu.Unlock()
	})
	return err
}

// gate applies delay and stall; it returns false if the conn closed while
// blocked.
func (c *Conn) gate(delay time.Duration, stallCh chan struct{}) bool {
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.closed:
			return false
		}
	}
	if stallCh != nil {
		select {
		case <-stallCh:
		case <-c.closed:
			return false
		}
	}
	return true
}

// faults snapshots the injector state relevant to one I/O.
func (c *Conn) faults(write bool) (delay time.Duration, stallCh chan struct{}) {
	c.inj.mu.Lock()
	defer c.inj.mu.Unlock()
	if write {
		delay = c.inj.writeDelay
	} else {
		delay = c.inj.readDelay
	}
	if c.inj.stalled {
		stallCh = c.inj.unstall
	}
	return delay, stallCh
}

// spend consumes n bytes of the cut budget; it reports whether the budget
// was crossed (and disarms it), in which case the caller must reset.
func (c *Conn) spend(n int) bool {
	c.inj.mu.Lock()
	defer c.inj.mu.Unlock()
	if c.inj.cutBudget < 0 {
		return false
	}
	c.inj.cutBudget -= int64(n)
	if c.inj.cutBudget <= 0 {
		c.inj.cutBudget = -1
		return true
	}
	return false
}

func (c *Conn) Read(b []byte) (int, error) {
	delay, stallCh := c.faults(false)
	if !c.gate(delay, stallCh) {
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(b)
	if n > 0 && c.spend(n) {
		c.Close()
		return n, nil // deliver what crossed the budget, then the conn is gone
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	delay, stallCh := c.faults(true)
	if !c.gate(delay, stallCh) {
		return 0, net.ErrClosed
	}
	c.inj.mu.Lock()
	trunc := c.inj.truncNext
	c.inj.truncNext = false
	c.inj.mu.Unlock()
	if trunc {
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Close()
		return n, net.ErrClosed
	}
	// Budget the write before issuing it so a cut lands mid-frame: send
	// only the bytes the budget allows, then reset.
	c.inj.mu.Lock()
	budget := c.inj.cutBudget
	if budget >= 0 && budget < int64(len(b)) {
		c.inj.cutBudget = -1
	} else if budget >= 0 {
		c.inj.cutBudget -= int64(len(b))
	}
	c.inj.mu.Unlock()
	if budget >= 0 && budget < int64(len(b)) {
		n, _ := c.Conn.Write(b[:budget])
		c.Close()
		return n, net.ErrClosed
	}
	return c.Conn.Write(b)
}
