package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/live"
	"repro/internal/refcache"
	"repro/internal/stats"
)

// Config describes a shard cluster.
type Config struct {
	// Shards lists the server addresses; Shards[i] is shard ID i. The
	// shard ID is the cluster-wide identity carried by located refs, so
	// every process sharing refs must use the same ordering (servers
	// started with -shard-id verify it at registration).
	Shards []string
	// Vnodes is the consistent-hash ring's virtual-node count per shard
	// (<= 0 uses DefaultVnodes).
	Vnodes int
	// Client is the per-shard live client configuration; its
	// OnHeartbeatFailure hook still fires (before the pool's own
	// failover accounting).
	Client live.ClientConfig
	// UnhealthyAfter is how many consecutive heartbeat failures eject a
	// shard from the ring (<= 0 uses 3). Ejection affects NEW placements
	// only: refs already on the shard keep resolving until its lease
	// reaper reclaims the session.
	UnhealthyAfter int
	// RejoinPoll paces the background check that re-adds an ejected
	// shard once its heartbeats recover (0 uses 500ms; negative disables
	// — ejection is then permanent for the client's lifetime).
	RejoinPoll time.Duration
	// OnTopology, when set, is called after a shard is ejected from or
	// rejoined to the ring (healthy=false / true). It must not block.
	OnTopology func(shard uint32, healthy bool)
	// ReplicaFactor R places each staged payload on the R distinct ring
	// successors of its placement point (DESIGN.md §D13), so one shard
	// death loses nothing. <= 1 disables replication (the pre-replica
	// behaviour); values above dmwire.MaxRefReplicas are clamped. At R>1
	// StageRefKeyed ignores the caller's co-location key — replicated
	// placement must be recomputable from the ref key alone.
	ReplicaFactor int
	// RepairBytesPerSec bounds the background repairer's copy bandwidth
	// so repair never starves foreground traffic. 0 uses 32 MiB/s;
	// negative removes the bound.
	RepairBytesPerSec int64
	// RepairInterval paces the periodic repair scan over tracked refs
	// (0 uses 2s; negative disables the periodic scan — topology changes
	// still kick an immediate pass).
	RepairInterval time.Duration
	// RegistryHandoff hands staged replicated refs off to the cluster ref
	// registry (DESIGN.md §D16): after a replicated stage the placement is
	// published to each replica shard's directory, making the ref
	// registry-owned — it survives its producer's lease reap and is
	// released only by an explicit free or a migration reclaim. The
	// repairer additionally anti-entropy-syncs directory pages from the
	// shards (adopting refs staged by departed clients) and read failover
	// falls back to a directory lookup when every placement-derived
	// candidate misses. Off by default: without it the pool behaves as
	// before (refs die with their producer's session).
	RegistryHandoff bool
	// CacheBytes enables the cluster-level hot-ref payload cache
	// (DESIGN.md §D15): whole-object by-ref reads are served from
	// memory — checked before shard routing and before replica failover
	// — up to this budget, invalidated by per-shard epoch advances,
	// local frees/writes, ejection and session reap, and bounded by the
	// shard lease TTL. 0 disables. The pool cache subsumes the per-shard
	// one, so Client.CacheBytes is ignored (forced to 0) for the shard
	// sessions the pool dials.
	CacheBytes int64
}

// ErrNoShards is returned when every shard has been ejected.
var ErrNoShards = errors.New("pool: no healthy shards in ring")

// shard is one member server and its dedicated live client session.
type shard struct {
	id      uint32
	addr    string
	cl      *live.Client
	healthy atomic.Bool
	// failoverServed counts reads this shard answered as a non-primary
	// replica after the primary failed (ReplicaStats).
	failoverServed atomic.Int64
	// repairsIn counts replica copies the repairer re-staged onto this
	// shard (ReplicaStats).
	repairsIn atomic.Int64
}

// Client is a process's handle on the shard cluster: the full
// live.Client surface (sync and async), with placements routed through
// the ring and refs/addresses made location-aware — Ref.Server and the
// address tag byte carry the shard ID instead of a dial-order index.
// Methods are safe for concurrent use.
type Client struct {
	cfg Config
	// shards is copy-on-write: AddShard swaps in a grown copy under
	// shardsMu, so readers snapshot the slice once (shardList) and index
	// it freely without holding a lock on the hot path.
	shardsMu sync.RWMutex
	shards   []*shard
	// addMu serializes AddShard (dial + register happen outside shardsMu).
	addMu  sync.Mutex
	ring   *Ring
	cursor atomic.Uint64 // placement key for unkeyed StageRef/Alloc

	// Tracked replicated refs staged by this client (replica.go): the
	// repairer's work list, in the Kademlia republisher model — each
	// staging client keeps its own refs fully replicated.
	refMu sync.Mutex
	refs  map[uint64]*refMeta

	repairKick    chan struct{}
	failoverReads atomic.Int64 // reads served by a non-primary replica
	repairsDone   atomic.Int64 // replica copies restored by the repairer
	repairErrors  atomic.Int64 // failed repair reads/stages
	repairBytes   atomic.Int64 // payload bytes copied by the repairer

	// Migration counters (DESIGN.md §D16): a "migration" is a rebalance
	// pass moving a ref onto its wanted ring successors AND reclaiming a
	// surplus copy; a bare reclaim (surplus freed with no copy needed)
	// still counts reclaimedReplicas.
	migratedRefs      atomic.Int64 // refs moved onto their wanted placement
	migratedBytes     atomic.Int64 // payload bytes staged by those moves
	reclaimedReplicas atomic.Int64 // surplus replica copies freed

	// syncCursors tracks the per-shard anti-entropy page cursor
	// (RegistryHandoff); guarded by refMu alongside the refs it feeds.
	syncCursors map[uint32]uint64

	// cache is the cluster-level hot-ref payload cache (nil when
	// disabled), keyed by (primary shard ID, ref key) so repeat reads
	// dedup across failover. cacheTTL caps entry lifetime at the
	// shortest shard lease (0 when no shard leases sessions).
	cache    *refcache.Cache[*live.Buf]
	cacheTTL atomic.Int64 // nanoseconds; set at Register

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Address tagging: as in live and dmnet, the routing identity rides the
// top byte of a dm.RemoteAddr — here the cluster-wide shard ID. Each
// per-shard live.Client is single-address, so the addresses it mints
// always carry tag 0 and the pool's tag byte is free to claim.
const shardShift = 56

func tagShard(id uint32, a dm.RemoteAddr) dm.RemoteAddr {
	return dm.RemoteAddr(uint64(id)<<shardShift | uint64(a))
}

func splitShard(a dm.RemoteAddr) (uint32, dm.RemoteAddr) {
	return uint32(uint64(a) >> shardShift), dm.RemoteAddr(uint64(a) & (1<<shardShift - 1))
}

// Dial connects one live client per shard. The returned pool is not
// usable until Register.
func Dial(cfg Config) (*Client, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("pool: need at least one shard address")
	}
	if cfg.UnhealthyAfter <= 0 {
		cfg.UnhealthyAfter = 3
	}
	if cfg.RejoinPoll == 0 {
		cfg.RejoinPoll = 500 * time.Millisecond
	}
	if cfg.ReplicaFactor > dmwire.MaxRefReplicas {
		cfg.ReplicaFactor = dmwire.MaxRefReplicas
	}
	p := &Client{
		cfg:         cfg,
		ring:        NewRing(cfg.Vnodes),
		refs:        make(map[uint64]*refMeta),
		syncCursors: make(map[uint32]uint64),
		repairKick:  make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	if cfg.CacheBytes > 0 {
		p.cache = refcache.New[*live.Buf](refcache.Config{MaxBytes: cfg.CacheBytes})
	}
	for i, addr := range cfg.Shards {
		s, err := p.newShard(uint32(i), addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.shards = append(p.shards, s)
		p.ring.Add(s.id)
	}
	return p, nil
}

// newShard dials one member server's dedicated live session, wiring the
// pool's ejection and cache-invalidation hooks around the caller's.
func (p *Client) newShard(id uint32, addr string) (*shard, error) {
	s := &shard{id: id, addr: addr}
	s.healthy.Store(true)
	ccfg := p.cfg.Client
	// The pool-level cache sits above shard routing; a second cache
	// inside each shard session would double the memory for the same
	// hits, so the per-shard knob is forced off.
	ccfg.CacheBytes = 0
	base := ccfg.OnHeartbeatFailure
	ccfg.OnHeartbeatFailure = func(addr string, consecutive int, err error) {
		if base != nil {
			base(addr, consecutive, err)
		}
		if consecutive >= p.cfg.UnhealthyAfter {
			p.eject(s)
		}
	}
	baseEpoch := ccfg.OnEpochAdvance
	ccfg.OnEpochAdvance = func(addr string, epoch uint64) {
		// The shard's invalidation epoch advanced: something it held
		// was freed, overwritten or reaped, so every pool-cached
		// payload homed on it is suspect (§D15).
		p.cache.InvalidateServer(s.id)
		if baseEpoch != nil {
			baseEpoch(addr, epoch)
		}
	}
	cl, err := live.DialConfig(ccfg, addr)
	if err != nil {
		return nil, fmt.Errorf("pool: shard %d (%s): %w", id, addr, err)
	}
	s.cl = cl
	return s, nil
}

// shardList snapshots the shard slice. The returned slice is immutable
// (AddShard replaces, never appends in place), so callers may index it
// without further locking.
func (p *Client) shardList() []*shard {
	p.shardsMu.RLock()
	s := p.shards
	p.shardsMu.RUnlock()
	return s
}

// AddShard grows the cluster by one member at the next shard ID: it
// dials and registers a session on addr, verifies any announced shard
// ID matches, admits the shard to the ring, and kicks the repairer —
// which now sees every tracked ref whose wanted placement moved onto
// the newcomer and migrates it there (copy, registry flip, surplus
// reclaim; DESIGN.md §D16). Reads keep failing over through both old
// and new locations while the rebalance drains, so the join is safe
// under load. Call after Register; every process sharing the cluster
// map must observe joins in the same order, since the assigned ID is
// positional.
func (p *Client) AddShard(addr string) (uint32, error) {
	p.addMu.Lock()
	defer p.addMu.Unlock()
	id := uint32(len(p.shardList()))
	s, err := p.newShard(id, addr)
	if err != nil {
		return 0, err
	}
	if err := s.cl.Register(); err != nil {
		s.cl.Close()
		return 0, fmt.Errorf("pool: joining shard %d (%s): %w", id, addr, err)
	}
	if announced, ok := s.cl.ServerShard(0); ok && announced != id {
		s.cl.Close()
		return 0, fmt.Errorf("pool: server %s announces shard %d but joins as shard %d",
			addr, announced, id)
	}
	// A shorter lease on the newcomer tightens the cache-staleness cap.
	if l := s.cl.Lease(0); l > 0 {
		if cur := time.Duration(p.cacheTTL.Load()); cur == 0 || l < cur {
			p.cacheTTL.Store(int64(l))
		}
	}
	p.shardsMu.Lock()
	grown := make([]*shard, len(p.shards)+1)
	copy(grown, p.shards)
	grown[id] = s
	p.shards = grown
	p.shardsMu.Unlock()
	p.ring.Add(id)
	if cb := p.cfg.OnTopology; cb != nil {
		cb(id, true)
	}
	p.kickRepair()
	return id, nil
}

// Register obtains a session on every shard and starts the heartbeat
// and rejoin machinery; must complete before other calls. Servers that
// announce a shard ID (dmserverd -shard-id) are verified against their
// position in Config.Shards, catching a shuffled or stale server list
// before any ref is minted with the wrong location.
func (p *Client) Register() error {
	for _, s := range p.shardList() {
		if err := s.cl.Register(); err != nil {
			return fmt.Errorf("pool: shard %d (%s): %w", s.id, s.addr, err)
		}
		if announced, ok := s.cl.ServerShard(0); ok && announced != s.id {
			return fmt.Errorf("pool: server %s announces shard %d but is listed as shard %d",
				s.addr, announced, s.id)
		}
	}
	// Cap cached-entry lifetime at the shortest shard lease: a missed
	// invalidation can then serve stale bytes for at most one lease TTL
	// and never across a reap (§D15).
	var minLease time.Duration
	for _, s := range p.shardList() {
		if l := s.cl.Lease(0); l > 0 && (minLease == 0 || l < minLease) {
			minLease = l
		}
	}
	p.cacheTTL.Store(int64(minLease))
	if p.cfg.RejoinPoll > 0 {
		p.wg.Add(1)
		go p.rejoinLoop()
	}
	if p.replicaFactor() > 1 {
		p.wg.Add(1)
		go p.repairLoop()
	}
	return nil
}

// Close stops the rejoin loop, releases every cached payload, and
// tears down every shard session.
func (p *Client) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.cache.Flush()
	var first error
	for _, s := range p.shardList() {
		if s.cl == nil {
			continue
		}
		if err := s.cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// eject removes a shard from the ring (new placements only; byID
// resolution is untouched, so the shard's existing refs keep routing to
// it until the server reaps the session).
func (p *Client) eject(s *shard) {
	if !s.healthy.CompareAndSwap(true, false) {
		return
	}
	p.ring.Remove(s.id)
	// While ejected the shard's epoch is unobservable, so its cached
	// payloads can no longer be kept coherent — drop them (§D15).
	p.cache.InvalidateServer(s.id)
	if cb := p.cfg.OnTopology; cb != nil {
		cb(s.id, false)
	}
	// Refs with a replica on the ejected shard are now under-replicated:
	// re-replicate them onto the shard's ring successors immediately.
	p.kickRepair()
}

// rejoinLoop re-admits ejected shards. Two recovery paths:
//
//   - Partition healed, session intact: the per-server consecutive-failure
//     counter resets to zero only on a successful renewal, so a zero
//     reading means the session (and the shard's data) is live again —
//     plain rejoin.
//   - Session reaped (server restart or lease expiry): the heartbeat loop
//     has exited with the SessionReaped latch set. The shard's memory is
//     gone, so the poller re-registers a fresh session, verifies the
//     server still announces the expected shard ID, drops the shard from
//     every tracked replica set, and re-admits it as a repair target.
func (p *Client) rejoinLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.RejoinPoll)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			for _, s := range p.shardList() {
				if s.healthy.Load() {
					continue
				}
				if s.cl.SessionReaped(0) {
					if err := s.cl.Reregister(0); err != nil {
						continue // still down; retry next poll
					}
					if announced, ok := s.cl.ServerShard(0); ok && announced != s.id {
						continue // a different server came up on the address
					}
					// Everything the old session held on this shard is
					// gone: forget its replicas before readmitting it, so
					// reads don't chase vanished copies and the repairer
					// re-stages onto it.
					p.invalidateShard(s.id)
				} else if s.cl.SessionHealth()[s.addr] != 0 {
					continue
				}
				if s.healthy.CompareAndSwap(false, true) {
					p.ring.Add(s.id)
					if cb := p.cfg.OnTopology; cb != nil {
						cb(s.id, true)
					}
					p.kickRepair()
				}
			}
		}
	}
}

// route picks the shard owning key via the ring.
func (p *Client) route(key uint64) (*shard, error) {
	id, ok := p.ring.Lookup(key)
	if !ok {
		return nil, ErrNoShards
	}
	shards := p.shardList()
	if int(id) >= len(shards) {
		return nil, ErrNoShards // ring raced ahead of the shard list
	}
	return shards[id], nil
}

// byID resolves a shard by its cluster-wide ID — the consume-side path,
// deliberately NOT ring-based so refs and addresses minted before an
// ejection keep resolving to the shard that stores their pages.
func (p *Client) byID(id uint32) (*shard, error) {
	shards := p.shardList()
	if int(id) >= len(shards) {
		return nil, fmt.Errorf("pool: ref names shard %d outside the %d-shard cluster: %w",
			id, len(shards), dm.ErrBadAddress)
	}
	return shards[id], nil
}

// LocatedRefs marks this backend's refs as cluster-addressed: Ref.Server
// is a shard ID valid across every process sharing the cluster map, so
// liverpc encodes them in the versioned v1 wire form.
func (p *Client) LocatedRefs() bool { return true }

// Shards returns the cluster size.
func (p *Client) Shards() int { return len(p.shardList()) }

// Healthy returns the shard IDs currently in the ring, sorted.
func (p *Client) Healthy() []uint32 { return p.ring.Members() }

// SessionHealth merges every shard's consecutive heartbeat-failure
// count, keyed by server address (see live.Client.SessionHealth).
func (p *Client) SessionHealth() map[string]int {
	shards := p.shardList()
	out := make(map[string]int, len(shards))
	for _, s := range shards {
		out[s.addr] = s.cl.SessionHealth()[s.addr]
	}
	return out
}

// Stats sums the per-shard client counters (see live.Client.Stats) and
// folds in the pool-level hot-ref cache counters.
func (p *Client) Stats() live.Stats {
	var sum live.Stats
	for _, s := range p.shardList() {
		st := s.cl.Stats()
		sum.Calls += st.Calls
		sum.Retries += st.Retries
		sum.DedupReplays += st.DedupReplays
		sum.Failures += st.Failures
		sum.Timeouts += st.Timeouts
		sum.TransportErrors += st.TransportErrors
		sum.HeartbeatFailures += st.HeartbeatFailures
		sum.CreditWaits += st.CreditWaits
		sum.CreditSheds += st.CreditSheds
	}
	cs := p.cache.Stats()
	sum.CacheHits += cs.Hits
	sum.CacheMisses += cs.Misses
	sum.CacheAdmits += cs.Admits
	sum.CacheEvictions += cs.Evictions
	sum.CacheInvalidations += cs.Invalidations
	sum.CacheCoalesced += cs.Coalesced
	return sum
}

// CacheStats snapshots the pool-level hot-ref cache counters (zero when
// the cache is disabled).
func (p *Client) CacheStats() refcache.Stats { return p.cache.Stats() }

// CacheEnabled reports whether the pool-level hot-ref cache is on.
func (p *Client) CacheEnabled() bool { return p.cache != nil }

// ShardStats returns each shard's own counter snapshot, indexed by
// shard ID.
func (p *Client) ShardStats() []live.Stats {
	shards := p.shardList()
	out := make([]live.Stats, len(shards))
	for i, s := range shards {
		out[i] = s.cl.Stats()
	}
	return out
}

// Latency merges every shard's per-op latency histogram into one
// cluster-wide percentile summary (nanoseconds).
func (p *Client) Latency() stats.Summary {
	merged := &stats.Histogram{}
	for _, s := range p.shardList() {
		merged.Merge(s.cl.LatencyHistogram())
	}
	return merged.Summarize()
}

// ShardLatency returns each shard's own per-op latency summary, indexed
// by shard ID (dmctl pool stats prints these).
func (p *Client) ShardLatency() []stats.Summary {
	shards := p.shardList()
	out := make([]stats.Summary, len(shards))
	for i, s := range shards {
		out[i] = s.cl.Latency()
	}
	return out
}

// --- Table II surface, routed ---

// Alloc reserves size bytes on a ring-chosen shard; the returned address
// carries the shard ID in its tag byte.
func (p *Client) Alloc(size int64) (dm.RemoteAddr, error) {
	s, err := p.route(p.cursor.Add(1))
	if err != nil {
		return 0, err
	}
	addr, err := s.cl.Alloc(size)
	if err != nil {
		return 0, err
	}
	return tagShard(s.id, addr), nil
}

// Free releases the region at addr on its shard.
func (p *Client) Free(addr dm.RemoteAddr) error {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return err
	}
	return s.cl.Free(raw)
}

// Write stores src at addr on its shard. The shard's pool-cached
// payloads are invalidated whether or not the write reports success —
// a timed-out write may still have landed (§D15).
func (p *Client) Write(addr dm.RemoteAddr, src []byte) error {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return err
	}
	defer p.cache.InvalidateServer(id)
	return s.cl.Write(raw, src)
}

// Read loads len(dst) bytes from addr on its shard.
func (p *Client) Read(addr dm.RemoteAddr, dst []byte) error {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return err
	}
	return s.cl.Read(raw, dst)
}

// CreateRef shares [addr, addr+size) and returns a located ref
// (Server = shard ID).
func (p *Client) CreateRef(addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return dm.Ref{}, err
	}
	ref, err := s.cl.CreateRef(raw, size)
	if err != nil {
		return dm.Ref{}, err
	}
	ref.Server = s.id
	return ref, nil
}

// MapRef maps a located ref on its shard; the returned address carries
// the shard ID.
func (p *Client) MapRef(ref dm.Ref) (dm.RemoteAddr, error) {
	s, err := p.byID(ref.Server)
	if err != nil {
		return 0, err
	}
	local := ref
	local.Server = 0
	addr, err := s.cl.MapRef(local)
	if err != nil {
		return 0, err
	}
	return tagShard(s.id, addr), nil
}

// FreeRef drops a located ref's page hold. Replicated refs (pool-minted
// key) are freed on every replica shard; single-copy refs on their one
// shard.
func (p *Client) FreeRef(ref dm.Ref) error {
	// Drop the cached payload whether or not the free reports success (a
	// timed-out free may still have landed on the server, §D15), then
	// tombstone the key so failover reads of the dead ref short-circuit
	// instead of probing every replica (§D16). The epoch watcher clears
	// the tombstone if the shard's key population changes.
	defer func() {
		k := p.cacheKey(ref)
		p.cache.Invalidate(k)
		p.cache.Deny(k, time.Duration(p.cacheTTL.Load()))
	}()
	if ref.Key&dmwire.ReplicaKeyBit != 0 {
		return p.freeReplicated(ref)
	}
	s, err := p.byID(ref.Server)
	if err != nil {
		return err
	}
	local := ref
	local.Server = 0
	return s.cl.FreeRef(local)
}

// StageRef stages data onto a ring-chosen shard and returns a located
// ref. Placement uses an internal cursor, spreading unkeyed stages
// uniformly; use StageRefKeyed to co-locate related data. At
// ReplicaFactor > 1 the payload is staged on the R ring successors of a
// pool-minted cluster key (replica.go) and the stage succeeds once at
// least one copy lands.
func (p *Client) StageRef(data []byte) (dm.Ref, error) {
	if p.replicaFactor() > 1 {
		return p.stageReplicatedAsync(data, 0).Wait()
	}
	return p.StageRefKeyed(p.cursor.Add(1), data)
}

// StageRefKeyed stages data onto the shard owning key — the same key
// always lands on the same shard (until the ring changes), which is how
// an application co-locates the pieces of one logical object. At
// ReplicaFactor > 1 the co-location key is ignored: replicated placement
// must be derivable from the ref key alone, so every stage follows its
// own minted cluster key instead.
func (p *Client) StageRefKeyed(key uint64, data []byte) (dm.Ref, error) {
	if p.replicaFactor() > 1 {
		return p.stageReplicatedAsync(data, 0).Wait()
	}
	s, err := p.route(key)
	if err != nil {
		return dm.Ref{}, err
	}
	ref, err := s.cl.StageRef(data)
	if err != nil {
		return dm.Ref{}, err
	}
	ref.Server = s.id
	return ref, nil
}

// ReadRef reads a located ref's snapshot, failing over across the ref's
// replicas when the primary shard errors or has been ejected
// (replica.go).
func (p *Client) ReadRef(ref dm.Ref, off int64, dst []byte) error {
	return p.ReadRefFrom(ref, nil, off, dst)
}

// ReadRefLease reads a located ref's snapshot as a leased zero-copy
// buffer (live.Client.ReadRefLease), with the same replica failover as
// ReadRef; the caller must Release it exactly once.
func (p *Client) ReadRefLease(ref dm.Ref, off, size int64) (*live.Buf, error) {
	return p.ReadRefLeaseFrom(ref, nil, off, size)
}

// --- hot-ref cache read-through (§D15) ---

// refCacheable reports whether a by-ref read can be served through the
// pool cache: only whole-object reads, so one cached Buf satisfies
// every repeat reader without range bookkeeping.
func (p *Client) refCacheable(ref dm.Ref, off, size int64) bool {
	return p.cache != nil && off == 0 && size > 0 && size == ref.Size
}

// cacheKey keys a located ref by (nominal primary shard, ref key); the
// key stays stable across failover reads, so a payload fetched from a
// fallback replica still dedups with primary-served reads.
func (p *Client) cacheKey(ref dm.Ref) refcache.Key {
	return refcache.Key{Server: ref.Server, Ref: ref.Key}
}

// cachedRead serves a whole-object read through the cache: hit returns
// a retained cached Buf, miss runs one leased wire read (with full
// replica failover) under singleflight and offers it for admission.
// The caller must Release the returned Buf exactly once.
func (p *Client) cachedRead(ref dm.Ref, hints []uint32) (*live.Buf, error) {
	return p.cache.GetOrLoad(p.cacheKey(ref), ref.Size, time.Duration(p.cacheTTL.Load()),
		func() (*live.Buf, error) {
			return p.readRefLeaseFromWire(ref, hints, 0, ref.Size)
		})
}
