// Command dmrpc-bench regenerates the paper's evaluation tables and
// figures (§VI) from the simulation.
//
// Usage:
//
//	dmrpc-bench -list
//	dmrpc-bench -experiment fig5a
//	dmrpc-bench -experiment all -scale full
//	dmrpc-bench -experiment all -json BENCH_figures.json
//
// Every experiment prints rows in the same shape the paper plots: systems
// down the side, the swept parameter across, throughput/latency/traffic as
// the measured quantity. EXPERIMENTS.md records the paper-vs-measured
// comparison for each. With -json, the same rows are also written as
// machine-readable records (internal/bench.Record) for perf-trajectory
// tracking across PRs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	scaleFlag := flag.String("scale", "quick", "measurement windows: quick | full")
	jsonPath := flag.String("json", "", "also write experiment rows as JSON records to this file (e.g. BENCH_figures.json)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var records []bench.Record
	run := func(e bench.Experiment) {
		start := time.Now()
		var out io.Writer = os.Stdout
		var capture bytes.Buffer
		if *jsonPath != "" {
			out = io.MultiWriter(os.Stdout, &capture)
		}
		e.Run(out, scale)
		elapsed := time.Since(start)
		fmt.Printf("[%s finished in %v wall time]\n", e.ID, elapsed.Round(time.Millisecond))
		if *jsonPath != "" {
			records = append(records, bench.Record{
				ID:          e.ID,
				Title:       e.Title,
				Scale:       *scaleFlag,
				WallSeconds: elapsed.Seconds(),
				Output:      strings.Split(strings.TrimRight(capture.String(), "\n"), "\n"),
			})
		}
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
	} else {
		e, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run(e)
	}

	if *jsonPath != "" {
		if err := bench.WriteRecords(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %d records to %s]\n", len(records), *jsonPath)
	}
}
