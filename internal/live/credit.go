package live

import (
	"errors"
	"sync"
	"time"
)

// Credit-based flow control (DESIGN.md §D12), after eRPC's session
// credits: the server advertises a per-session window of in-flight
// asynchronous calls at register time and refreshes it with every
// heartbeat; the client's async submission paths (CallAsync and
// everything built on it — StageRefAsync, WriteAsync, ReadRefAsync,
// chain pipelining) acquire one credit per call and return it when the
// call completes. A stalled or overloaded server therefore degrades to
// bounded queueing — the pending map and the frames behind it can never
// exceed the credit window — instead of unbounded client memory growth.
//
// Synchronous calls and heartbeats bypass the gate: their in-flight
// count is already bounded by caller concurrency, and gating lease
// renewals behind data-path congestion would let an overload kill the
// session it is trying to protect.

// DefaultSessionCredits is the default per-session async credit window,
// used by servers that don't configure SessionCredits and by clients
// before any server advertisement arrives.
const DefaultSessionCredits = 256

// ErrCredits reports an asynchronous submission shed because the
// session's credit window stayed exhausted for the whole attempt
// deadline. It is deliberately NOT transient: a retry would re-enter the
// same full window (or worse, bypass the gate via the retry path), so
// the caller must slow down instead.
var ErrCredits = errors.New("live: session credit window exhausted")

// creditGate is one peer session's credit window. Waiters park on
// per-waiter buffered channels (sync.Cond has no timed wait); a channel
// is signaled exactly once, at the moment it is popped off the waiter
// list, so a timed-out waiter that was concurrently signaled can detect
// the race and pass the wake on rather than losing it.
type creditGate struct {
	mu      sync.Mutex
	limit   int
	used    int
	waiters []chan struct{}
}

func newCreditGate(limit int) *creditGate { return &creditGate{limit: limit} }

// acquire takes one credit, blocking while the window is exhausted.
// deadline (zero = unbounded) caps the wait; expiry sheds the submission
// with ErrCredits. waited reports whether the caller had to block.
func (g *creditGate) acquire(deadline time.Time) (waited bool, err error) {
	g.mu.Lock()
	for g.used >= g.limit {
		waited = true
		ch := make(chan struct{}, 1)
		g.waiters = append(g.waiters, ch)
		g.mu.Unlock()
		var timeC <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			timer = time.NewTimer(time.Until(deadline))
			timeC = timer.C
		}
		select {
		case <-ch:
			if timer != nil {
				timer.Stop()
			}
			g.mu.Lock()
		case <-timeC:
			g.mu.Lock()
			if !g.removeLocked(ch) {
				// Signaled between timer fire and lock: the wake must not
				// be lost with this waiter giving up, so pass it on.
				g.wakeLocked()
			}
			g.mu.Unlock()
			return waited, ErrCredits
		}
	}
	g.used++
	g.mu.Unlock()
	return waited, nil
}

// release returns one credit and wakes one waiter.
func (g *creditGate) release() {
	g.mu.Lock()
	if g.used > 0 {
		g.used--
	}
	g.wakeLocked()
	g.mu.Unlock()
}

// setLimit resizes the window (a fresh server advertisement). Growing it
// wakes every waiter to re-check; shrinking it simply lets in-flight
// calls drain below the new bound.
func (g *creditGate) setLimit(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	grew := n > g.limit
	g.limit = n
	if grew {
		for len(g.waiters) > 0 {
			g.wakeLocked()
		}
	}
	g.mu.Unlock()
}

// inUse reports the credits currently held (tests, monitoring).
func (g *creditGate) inUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// wakeLocked pops the oldest waiter and signals it; caller holds mu.
// Each waiter channel is signaled at most once (it leaves the list
// here), so the buffered send can never block.
func (g *creditGate) wakeLocked() {
	if len(g.waiters) == 0 {
		return
	}
	ch := g.waiters[0]
	n := copy(g.waiters, g.waiters[1:])
	g.waiters[n] = nil
	g.waiters = g.waiters[:n]
	ch <- struct{}{}
}

// removeLocked deletes ch from the waiter list, reporting whether it was
// still there (false means it was already popped and signaled).
func (g *creditGate) removeLocked(ch chan struct{}) bool {
	for i, w := range g.waiters {
		if w == ch {
			n := copy(g.waiters[i:], g.waiters[i+1:])
			g.waiters[i+n] = nil
			g.waiters = g.waiters[:i+n]
			return true
		}
	}
	return false
}

// gateFor returns addr's credit gate, creating it at the configured
// default limit on first use; nil when crediting is disabled
// (AsyncCredits < 0).
func (n *Node) gateFor(addr string) *creditGate {
	if n.cfg.AsyncCredits < 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.credits[addr]
	if !ok {
		g = newCreditGate(n.cfg.AsyncCredits)
		n.credits[addr] = g
	}
	return g
}

// setPeerCredits applies a server-advertised credit window for addr
// (register/heartbeat responses). Zero means "no advertisement" and
// leaves the configured limit in place.
func (n *Node) setPeerCredits(addr string, credits uint32) {
	if credits == 0 {
		return
	}
	if g := n.gateFor(addr); g != nil {
		g.setLimit(int(credits))
	}
}

// PendingCalls reports the number of request frames awaiting responses
// across every outbound connection — the quantity the credit window
// bounds under overload (tests assert PendingCalls <= the window).
func (n *Node) PendingCalls() int {
	n.mu.Lock()
	peers := make([]*conn, 0, len(n.peers))
	for _, c := range n.peers {
		peers = append(peers, c)
	}
	n.mu.Unlock()
	total := 0
	for _, c := range peers {
		c.pmu.Lock()
		total += len(c.pending)
		c.pmu.Unlock()
	}
	return total
}
