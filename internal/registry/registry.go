// Package registry is the cluster ref directory (DESIGN.md §D16): a
// per-shard authoritative map of cluster-keyed refs to their replica
// placement. Where PR 7's repair model tracked refs per producer —
// placement was a client-side accident that died with the staging
// session — the registry makes placement a cluster-managed, durable,
// movable property: entries are handed off from the staging client on
// stage (so refs survive their producer's lease reap), exchanged
// between clients and shards via the anti-entropy sync RPC, and flipped
// by the migration engine when the ring's wanted placement changes.
//
// Conflict resolution is epoch-based last-writer-wins: every entry
// carries a monotonically increasing epoch minted by whoever mutates
// the placement (the staging client at epoch 1, the migration executor
// bumping it on each flip). A Put at a lower epoch than the stored
// entry is a no-op, so stale anti-entropy pages can never roll a
// migration back. Deletes leave a bounded tombstone set behind for the
// same reason: a freed ref's key must not be resurrected by a sync page
// that predates the free.
//
// The package deliberately knows nothing about live or pool — it is a
// pure data structure both layers host without an import cycle.
package registry

import (
	"sort"
	"sync"
)

// Entry is one directory record: a cluster key, the payload size, the
// placement epoch, and the shard IDs believed to hold a copy (primary
// first).
type Entry struct {
	Key      uint64
	Size     int64
	Epoch    uint64
	Replicas []uint32
}

// clone deep-copies the entry so callers can't alias the registry's
// replica slices.
func (e Entry) clone() Entry {
	cp := e
	cp.Replicas = append([]uint32(nil), e.Replicas...)
	return cp
}

// DefaultMaxTombstones bounds the delete-memory set. Tombstones only
// need to outlive the anti-entropy propagation window, not the cluster;
// when the cap is hit the oldest (lowest-epoch) half is dropped.
const DefaultMaxTombstones = 4096

// Registry is one shard's (or one client's) directory slice. All
// methods are safe for concurrent use. The zero value is not ready;
// use New.
type Registry struct {
	mu            sync.RWMutex
	entries       map[uint64]Entry
	tombs         map[uint64]uint64 // key -> epoch at delete time
	maxTombstones int
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		entries:       make(map[uint64]Entry),
		tombs:         make(map[uint64]uint64),
		maxTombstones: DefaultMaxTombstones,
	}
}

// Put records e if it is news: a higher epoch than the stored entry (or
// any tombstone) wins, an equal epoch is idempotent (first writer
// stays), a lower epoch is ignored. Reports whether the directory
// changed.
func (r *Registry) Put(e Entry) bool {
	if e.Key == 0 || len(e.Replicas) == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tombEpoch, dead := r.tombs[e.Key]; dead && e.Epoch <= tombEpoch {
		return false
	}
	if cur, ok := r.entries[e.Key]; ok && e.Epoch <= cur.Epoch {
		return false
	}
	delete(r.tombs, e.Key)
	r.entries[e.Key] = e.clone()
	return true
}

// Get returns the entry for key, if present.
func (r *Registry) Get(key uint64) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[key]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Delete removes key at epoch, leaving a tombstone so a stale sync page
// cannot resurrect it. An epoch below the stored entry's is ignored
// (the delete lost the race to a later placement flip). Reports whether
// an entry was removed.
func (r *Registry) Delete(key uint64, epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.entries[key]; ok && epoch < cur.Epoch {
		return false
	}
	if prev, dead := r.tombs[key]; !dead || epoch > prev {
		r.tombstone(key, epoch)
	}
	if _, ok := r.entries[key]; !ok {
		return false
	}
	delete(r.entries, key)
	return true
}

// tombstone records the delete epoch, shedding the oldest half of the
// set when the cap is exceeded. Caller holds r.mu.
func (r *Registry) tombstone(key uint64, epoch uint64) {
	r.tombs[key] = epoch
	if len(r.tombs) <= r.maxTombstones {
		return
	}
	epochs := make([]uint64, 0, len(r.tombs))
	for _, ep := range r.tombs {
		epochs = append(epochs, ep)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	cut := epochs[len(epochs)/2]
	for k, ep := range r.tombs {
		if ep <= cut && k != key {
			delete(r.tombs, k)
		}
	}
}

// Len returns the number of live entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Page returns up to limit entries with keys strictly greater than
// afterKey, in ascending key order — the anti-entropy sync unit. A
// caller pages the whole directory by feeding the last returned key
// back in until the page comes back short.
func (r *Registry) Page(afterKey uint64, limit int) []Entry {
	if limit <= 0 {
		return nil
	}
	r.mu.RLock()
	keys := make([]uint64, 0, len(r.entries))
	for k := range r.entries {
		if k > afterKey {
			keys = append(keys, k)
		}
	}
	r.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) > limit {
		keys = keys[:limit]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		if e, ok := r.entries[k]; ok {
			out = append(out, e.clone())
		}
	}
	return out
}
