package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a fault-injected client conn talking to a plain server
// conn over a real loopback socket.
func pipePair(t *testing.T, inj *Injector) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server = c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	client = inj.Conn(raw)
	t.Cleanup(func() {
		client.Close()
		if server != nil {
			server.Close()
		}
	})
	return client, server
}

func TestTransparentByDefault(t *testing.T) {
	inj := New()
	client, server := pipePair(t, inj)
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("got %q, %v", buf, err)
	}
}

func TestReadDelay(t *testing.T) {
	inj := New()
	inj.SetReadDelay(50 * time.Millisecond)
	client, server := pipePair(t, inj)
	if _, err := server.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("read returned in %v, want >= ~50ms", d)
	}
}

func TestStallAndUnstall(t *testing.T) {
	inj := New()
	inj.Stall()
	client, server := pipePair(t, inj)
	if _, err := server.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := io.ReadFull(client, buf)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("read completed while stalled: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	inj.Unstall()
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after Unstall")
	}
}

// TestHealClearsStall covers the Heal/Stall interaction: a partition
// raised while a stall is active must not leave the stall gate armed
// after Heal, or fresh dials over the healed link wedge silently.
func TestHealClearsStall(t *testing.T) {
	inj := New()
	inj.Stall()
	inj.Partition()
	inj.Heal()
	client, server := pipePair(t, inj)
	if _, err := server.Write([]byte("h")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(client, make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read on healed link still stalled: Heal did not clear the stall gate")
	}
}

func TestStalledReadUnblocksOnClose(t *testing.T) {
	inj := New()
	inj.Stall()
	client, _ := pipePair(t, inj)
	got := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := client.Read(buf)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-got:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read not released by Close")
	}
}

func TestCutAfterTearsWriteMidFrame(t *testing.T) {
	inj := New()
	client, server := pipePair(t, inj)
	inj.CutAfter(3)
	n, err := client.Write([]byte("abcdef"))
	if err == nil {
		t.Fatal("write past the cut budget succeeded")
	}
	if n != 3 {
		t.Fatalf("wrote %d bytes before cut, want 3", n)
	}
	// The peer sees the truncated prefix, then EOF/reset.
	buf := make([]byte, 6)
	got, _ := io.ReadFull(server, buf)
	if got != 3 {
		t.Fatalf("peer received %d bytes, want 3", got)
	}
}

func TestTruncateNextWrite(t *testing.T) {
	inj := New()
	client, server := pipePair(t, inj)
	inj.TruncateNextWrite()
	if _, err := client.Write([]byte("abcdef")); err == nil {
		t.Fatal("truncated write reported success")
	}
	buf := make([]byte, 6)
	got, _ := io.ReadFull(server, buf)
	if got != 3 {
		t.Fatalf("peer received %d bytes, want half (3)", got)
	}
}

func TestPartitionKillsAndBlocksConns(t *testing.T) {
	inj := New()
	client, _ := pipePair(t, inj)
	var wg sync.WaitGroup
	wg.Add(1)
	readErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		_, err := client.Read(buf)
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	inj.Partition()
	wg.Wait()
	if err := <-readErr; err == nil {
		t.Fatal("read survived partition")
	}
	// New conns die on arrival while partitioned.
	c2, _ := pipePair(t, inj)
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on partitioned new conn succeeded")
	}
	inj.Heal()
	c3, s3 := pipePair(t, inj)
	if _, err := s3.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c3, make([]byte, 1)); err != nil {
		t.Fatalf("healed link still broken: %v", err)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	inj := New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := inj.Listener(ln)
	defer fln.Close()
	inj.Stall()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		accepted <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srvConn := <-accepted
	defer srvConn.Close()
	if _, err := raw.Write([]byte("q")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srvConn.Read(make([]byte, 1))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("accepted conn not stalled")
	case <-time.After(50 * time.Millisecond):
	}
	inj.Unstall()
	<-done
}
