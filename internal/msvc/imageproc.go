package msvc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Image-processing pipeline methods.
const (
	MFirewall rpc.Method = 0x0420 + iota
	MImgRoute
	MImgProc
	MTranscode
	MCompress
)

// Image operations carried in the request header.
const (
	imgOpTranscode = 0
	imgOpCompress  = 1
)

// ImageApp is the 7-tier Cloud Image Processing application of §VI-E
// (Fig 9): Client → Firewall → Load balance → Image processing (xN) →
// {Transcoding | Compressing} → result back to Client.
type ImageApp struct {
	pl        *Platform
	client    *Service
	firewall  *Service
	lb        *Service
	imgprocs  []*Service
	transcode *Service
	compress  *Service
	rr        int
	seq       uint64

	// ComputePerByte is the transcoding/compressing CPU cost (ns per
	// byte); defaults to 0.25 ns/B (~4 GB/s single-core codec).
	ComputePerByte float64
}

// NewImageApp deploys the pipeline with numImgProc image-processing
// instances. Call before Platform.Start.
func NewImageApp(pl *Platform, numImgProc int) *ImageApp {
	if numImgProc < 1 {
		panic("msvc: image app needs image-processing instances")
	}
	app := &ImageApp{
		pl:             pl,
		client:         pl.NewService("img-client"),
		firewall:       pl.NewService("firewall"),
		lb:             pl.NewService("img-lb"),
		transcode:      pl.NewService("transcoding"),
		compress:       pl.NewService("compressing"),
		ComputePerByte: 0.25,
	}
	for i := 0; i < numImgProc; i++ {
		app.imgprocs = append(app.imgprocs, pl.NewService(fmt.Sprintf("imgproc%d", i)))
	}

	app.firewall.Node.Handle(MFirewall, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		// Permission check touches only request metadata, never the image.
		ctx.P.Sleep(200)
		return pl.forward(ctx, app.firewall, app.lb.Addr(), MImgRoute, body)
	})
	app.lb.Node.Handle(MImgRoute, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		target := app.imgprocs[app.rr%len(app.imgprocs)]
		app.rr++
		return pl.forward(ctx, app.lb, target.Addr(), MImgProc, body)
	})
	for _, ip := range app.imgprocs {
		ip := ip
		ip.Node.Handle(MImgProc, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, ip)
			// Parse the request metadata (the op code); the image itself is
			// never touched here — it rides through as an Arg.
			d := rpc.NewDec(body)
			op := d.U8()
			next := app.transcode
			if op == imgOpCompress {
				next = app.compress
			}
			return pl.forward(ctx, ip, next.Addr(), methodFor(op), body)
		})
	}
	worker := func(s *Service) rpc.Handler {
		return func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, s)
			d := rpc.NewDec(body)
			_ = d.U8() // op
			arg := core.DecodeArg(d)
			data, err := s.C.Open(ctx.P, arg)
			if err != nil {
				return nil, err
			}
			img, err := data.Bytes(ctx.P)
			if err != nil {
				return nil, err
			}
			if err := data.Close(ctx.P); err != nil {
				return nil, err
			}
			// The codec itself: CPU time proportional to the image.
			s.Host.CPU.Use(ctx.P, sim.Time(float64(len(img))*app.ComputePerByte))
			out := make([]byte, len(img))
			for i, b := range img {
				out[i] = b ^ 0x5A // stand-in transform, verifiable end to end
			}
			s.Host.MemTouch(ctx.P, len(out))
			outArg, err := s.C.MakeArg(ctx.P, out)
			if err != nil {
				return nil, err
			}
			e := rpc.NewEnc(outArg.WireSize())
			outArg.Encode(e)
			return e.Bytes(), nil
		}
	}
	app.transcode.Node.Handle(MTranscode, worker(app.transcode))
	app.compress.Node.Handle(MCompress, worker(app.compress))
	return app
}

func methodFor(op uint8) rpc.Method {
	if op == imgOpCompress {
		return MCompress
	}
	return MTranscode
}

// Client returns the client-side service.
func (app *ImageApp) Client() *Service { return app.client }

// Do submits one image and returns the processed result. Requests
// alternate between transcode and compress ops, as the image-processing
// tier dispatches both.
func (app *ImageApp) Do(p *sim.Proc, image []byte) ([]byte, error) {
	op := uint8(app.seq % 2)
	app.seq++
	arg, err := app.client.C.MakeArg(p, image)
	if err != nil {
		return nil, err
	}
	e := rpc.NewEnc(1 + arg.WireSize())
	e.U8(op)
	arg.Encode(e)
	resp, err := app.client.Node.Call(p, app.firewall.Addr(), MFirewall, e.Bytes())
	if err != nil {
		return nil, err
	}
	outArg := core.DecodeArg(rpc.NewDec(resp))
	data, err := app.client.C.Open(p, outArg)
	if err != nil {
		return nil, err
	}
	out, err := data.Bytes(p)
	if err != nil {
		return nil, err
	}
	if err := data.Close(p); err != nil {
		return nil, err
	}
	app.client.C.ReleaseAsync(outArg)
	app.client.C.ReleaseAsync(arg)
	return out, nil
}
