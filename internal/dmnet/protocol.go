// Package dmnet implements DmRPC-net's disaggregated memory layer (paper
// §V-A) over the simulated datacenter: a DM server with a page manager
// (FIFO free list, per-process VA allocation trees, page reference counts,
// a ref key map) and an address translator (hash table from DM virtual
// pages to pinned frames), plus the client library issuing
// ralloc/rfree/create_ref/map_ref/rread/rwrite over the RPC layer, with
// allocation requests round-robined across servers.
//
// The wire protocol lives in internal/dmwire and is shared with the live
// TCP implementation in internal/live.
package dmnet

import (
	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Method aliases, re-exported from dmwire for callers of this backend.
const (
	MRegister  = dmwire.MRegister
	MAlloc     = dmwire.MAlloc
	MFree      = dmwire.MFree
	MCreateRef = dmwire.MCreateRef
	MMapRef    = dmwire.MMapRef
	MFreeRef   = dmwire.MFreeRef
	MRead      = dmwire.MRead
	MWrite     = dmwire.MWrite
	MStage     = dmwire.MStage
	MReadRef   = dmwire.MReadRef
)

// toAppError maps shared dm errors onto wire statuses.
func toAppError(err error) *rpc.AppError {
	return &rpc.AppError{Status: dmwire.StatusOf(err), Msg: err.Error()}
}

// fromAppError maps wire statuses back to shared dm errors so client code
// can compare against dm.Err* sentinels.
func fromAppError(err error) error {
	ae, ok := err.(*rpc.AppError)
	if !ok {
		return err
	}
	return dmwire.ErrOf(ae.Status, ae.Msg)
}
