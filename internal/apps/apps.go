// Package apps holds the backend-agnostic application logic of the
// paper's evaluation workloads, shared by the simulator service layer
// (internal/msvc) and the live TCP service layer (internal/liverpc) so
// the two worlds compute the same thing and cannot drift: the Chain
// terminal's aggregation loop (Fig 5) and the SocialNet post-media
// conventions (Fig 11). Pure functions over byte slices — no transport,
// no simulation.
package apps

import "fmt"

// Aggregate is the chain terminal's worker loop (paper Listing 1): a
// full pass over the payload reducing it to one value. Byte-summing
// makes the result payload-content-sensitive, so end-to-end tests can
// verify the right bytes arrived through either transport.
func Aggregate(buf []byte) uint64 {
	var sum uint64
	for _, b := range buf {
		sum += uint64(b)
	}
	return sum
}

// FillPayload writes a deterministic, offset-sensitive pattern seeded by
// seed, so torn or misordered transfers change the aggregate.
func FillPayload(buf []byte, seed uint64) {
	for i := range buf {
		buf[i] = byte(seed + uint64(i)*31)
	}
}

// FillMedia stamps a post's media buffer with its post id, making each
// post's content distinguishable when read back.
func FillMedia(buf []byte, id uint64) {
	if len(buf) == 0 {
		return
	}
	FillPayload(buf, id*7919)
	buf[0] = byte(id)
}

// CheckMedia verifies a media buffer read back from storage matches what
// FillMedia wrote for id.
func CheckMedia(buf []byte, id uint64) error {
	if len(buf) == 0 {
		return nil
	}
	if buf[0] != byte(id) {
		return fmt.Errorf("apps: media tagged %d, want %d", buf[0], byte(id))
	}
	for i := 1; i < len(buf); i++ {
		if buf[i] != byte(id*7919+uint64(i)*31) {
			return fmt.Errorf("apps: media for post %d corrupt at byte %d", id, i)
		}
	}
	return nil
}
