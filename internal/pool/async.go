package pool

import (
	"repro/internal/dm"
	"repro/internal/live"
)

// Asynchronous variants, mirroring live.Client's PR-4 pipelining
// surface: the pool routes up front, the shard's own client puts the
// frame on the wire immediately, and Wait carries the shard's retry and
// dedup semantics unchanged. Futures returned for located refs rewrite
// Ref.Server to the shard ID at Wait time.

// AsyncRef is an in-flight StageRefAsync against a routed shard; Wait
// must be called exactly once and yields a located ref.
type AsyncRef struct {
	inner *live.AsyncRef
	shard uint32
	err   error
}

// Wait blocks for the staging result.
func (ar *AsyncRef) Wait() (dm.Ref, error) {
	if ar.err != nil {
		return dm.Ref{}, ar.err
	}
	ref, err := ar.inner.Wait()
	if err != nil {
		return dm.Ref{}, err
	}
	ref.Server = ar.shard
	return ref, nil
}

// StageRefAsync starts staging data onto a ring-chosen shard and
// returns a future for the located ref. data must stay valid and
// unmodified until Wait returns.
func (p *Client) StageRefAsync(data []byte) *AsyncRef {
	return p.StageRefKeyedAsync(p.cursor.Add(1), data)
}

// StageRefKeyedAsync is StageRefAsync with explicit placement (see
// StageRefKeyed).
func (p *Client) StageRefKeyedAsync(key uint64, data []byte) *AsyncRef {
	s, err := p.route(key)
	if err != nil {
		return &AsyncRef{err: err}
	}
	return &AsyncRef{inner: s.cl.StageRefAsync(data), shard: s.id}
}

// AsyncOp is one in-flight asynchronous pool operation; Wait must be
// called exactly once.
type AsyncOp struct {
	inner *live.AsyncOp
	err   error
}

// Wait blocks for the operation's result.
func (op *AsyncOp) Wait() error {
	if op.err != nil {
		return op.err
	}
	return op.inner.Wait()
}

// ReadRefAsync starts a by-ref read from the ref's shard into dst and
// returns a future; dst is filled when Wait returns nil.
func (p *Client) ReadRefAsync(ref dm.Ref, off int64, dst []byte) *AsyncOp {
	s, err := p.byID(ref.Server)
	if err != nil {
		return &AsyncOp{err: err}
	}
	local := ref
	local.Server = 0
	return &AsyncOp{inner: s.cl.ReadRefAsync(local, off, dst)}
}

// WriteAsync starts an rwrite of src at addr on its shard and returns a
// future. src must stay valid and unmodified until Wait returns.
func (p *Client) WriteAsync(addr dm.RemoteAddr, src []byte) *AsyncOp {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return &AsyncOp{err: err}
	}
	return &AsyncOp{inner: s.cl.WriteAsync(raw, src)}
}
