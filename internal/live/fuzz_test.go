package live

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the TCP framing against arbitrary streams: no
// panics, and a frame that round-trips must match.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0, 0, 0, 1})
	var good bytes.Buffer
	_ = writeFrame(&good, kindRequest, 42, []byte("hello"))
	f.Add(good.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, reqID, payload, err := readFrame(bytes.NewReader(data), DefaultMaxFrameSize)
		// The pooled-buffer reader must agree with the plain one on both
		// acceptance and content.
		var hdr [frameHeaderSize]byte
		bkind, breqID, bpayload, berr := readFrameBuf(bytes.NewReader(data), hdr[:], DefaultMaxFrameSize)
		if (err == nil) != (berr == nil) {
			t.Fatalf("readFrame err=%v, readFrameBuf err=%v", err, berr)
		}
		if err != nil {
			return
		}
		if bkind != kind || breqID != reqID || !bytes.Equal(bpayload, payload) {
			t.Fatal("readFrame and readFrameBuf disagree")
		}
		putBuf(bpayload)
		var out bytes.Buffer
		if err := writeFrame(&out, kind, reqID, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("frame re-encode mismatch")
		}
	})
}

// FuzzServerDispatch throws arbitrary bodies at every method; the server
// must return an error status rather than panic, and its invariants must
// hold afterwards.
func FuzzServerDispatch(f *testing.F) {
	f.Add(uint16(0x0100), []byte{})
	f.Add(uint16(0x0101), []byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 16})
	f.Add(uint16(0x0109), make([]byte, 16))
	f.Fuzz(func(t *testing.T, m uint16, body []byte) {
		s := NewServer(ServerConfig{NumPages: 16, PageSize: 512})
		s.dispatch(methodOf(m), body)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants broken by method %#x: %v", m, err)
		}
	})
}
