# DmRPC reproduction — standard workflows.

GO ?= go

.PHONY: all build vet check test test-short bench bench-live experiments experiments-full fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast correctness gate: static checks plus the live-path and wire-protocol
# packages under the race detector (the striped DM server's concurrency is
# only trustworthy raced).
check: vet
	$(GO) test -race ./internal/live/... ./internal/dmwire/...

# Full suite: unit, property, invariant and paper-shape tests (~4 min),
# gated on the race-checked hot path.
test: check
	$(GO) test ./...

# Short mode skips the heavy simulation shape tests (~10 s).
test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus package micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Live TCP hot-path benchmarks, recorded to BENCH_live.json so the perf
# trajectory is tracked across PRs.
bench-live:
	$(GO) test -run '^$$' -bench 'BenchmarkLive' -benchmem ./internal/live | $(GO) run ./cmd/benchjson -out BENCH_live.json

# Regenerate every figure as text tables (quick windows).
experiments:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale quick

# Paper-scale windows; expect tens of minutes.
experiments-full:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale full

# Brief fuzzing passes over every wire-facing decoder.
fuzz:
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzReadFrame -fuzztime=30s
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzServerDispatch -fuzztime=30s
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzDecodeHeader -fuzztime=30s
	$(GO) test ./internal/rpc -run='^$$' -fuzz=FuzzDec -fuzztime=30s
	$(GO) test ./internal/dm -run='^$$' -fuzz=FuzzUnmarshalRef -fuzztime=30s

clean:
	$(GO) clean ./...
