package bench

import (
	"encoding/json"
	"os"
)

// Record is one experiment's machine-readable perf record, written to
// BENCH_*.json files so the performance trajectory can be tracked across
// PRs (cmd/dmrpc-bench -json; make bench-live uses the sibling format in
// cmd/benchjson for go-test benchmarks).
type Record struct {
	// ID is the experiment id (e.g. "fig5a").
	ID string `json:"id"`
	// Title is the experiment's one-line description.
	Title string `json:"title"`
	// Scale is "quick" or "full".
	Scale string `json:"scale"`
	// WallSeconds is the experiment's wall-clock runtime.
	WallSeconds float64 `json:"wall_seconds"`
	// Output is the experiment's rendered table, one string per line, so
	// figure rows stay diffable inside the JSON record.
	Output []string `json:"output"`
}

// WriteRecords writes records as indented JSON to path.
func WriteRecords(path string, records []Record) error {
	b, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
