package msvc

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

var allModes = []Mode{ModeERPC, ModeDmNet, ModeDmCXL}

// runProc drives fn as a process to completion.
func runProc(t *testing.T, pl *Platform, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	pl.Eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	pl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeERPC.String() != "eRPC" || ModeDmNet.String() != "DmRPC-net" || ModeDmCXL.String() != "DmRPC-CXL" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestChainAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			pl := NewPlatform(DefaultConfig(mode))
			defer pl.Shutdown()
			ch := NewChain(pl, 4)
			pl.Start()
			payload := make([]byte, 4096)
			var want uint64
			for i := range payload {
				payload[i] = byte(i)
				want += uint64(byte(i))
			}
			runProc(t, pl, func(p *sim.Proc) error {
				sum, err := ch.Do(p, payload)
				if err != nil {
					return err
				}
				if sum != want {
					t.Errorf("sum = %d, want %d", sum, want)
				}
				return nil
			})
		})
	}
}

func TestChainSingleHop(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeDmNet))
	defer pl.Shutdown()
	ch := NewChain(pl, 1)
	pl.Start()
	runProc(t, pl, func(p *sim.Proc) error {
		sum, err := ch.Do(p, []byte{1, 2, 3})
		if err != nil {
			return err
		}
		if sum != 6 {
			t.Errorf("sum = %d", sum)
		}
		return nil
	})
}

func TestChainNoPageLeak(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeDmNet))
	defer pl.Shutdown()
	ch := NewChain(pl, 3)
	pl.Start()
	free := func() int {
		total := 0
		for _, s := range pl.DMServers() {
			total += s.FreePages()
		}
		return total
	}
	start := free()
	runProc(t, pl, func(p *sim.Proc) error {
		for i := 0; i < 5; i++ {
			if _, err := ch.Do(p, make([]byte, 16384)); err != nil {
				return err
			}
		}
		return nil
	})
	if got := free(); got != start {
		t.Fatalf("page leak across requests: %d free, started %d", got, start)
	}
}

func TestLBForwardsWithoutTouchingData(t *testing.T) {
	// The Fig 6 claim: in DmRPC mode the LB's memory traffic per request
	// is tiny; in eRPC mode it scales with payload.
	memPerReq := func(mode Mode) int64 {
		pl := NewPlatform(DefaultConfig(mode))
		defer pl.Shutdown()
		app := NewLBApp(pl, 1, 1)
		pl.Start()
		const reqs = 10
		payload := make([]byte, 32768)
		before := app.LB().Host.MemBytesMoved()
		runProc(t, pl, func(p *sim.Proc) error {
			for i := 0; i < reqs; i++ {
				if err := app.Do(p, 0, payload); err != nil {
					return err
				}
			}
			return nil
		})
		return (app.LB().Host.MemBytesMoved() - before) / reqs
	}
	erpc := memPerReq(ModeERPC)
	dmnet := memPerReq(ModeDmNet)
	if erpc < 32768 {
		t.Fatalf("eRPC LB moves %dB/req, want >= payload", erpc)
	}
	if dmnet > 4096 {
		t.Fatalf("DmRPC LB moves %dB/req, want tiny", dmnet)
	}
}

func TestLBAllModesComplete(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			pl := NewPlatform(DefaultConfig(mode))
			defer pl.Shutdown()
			app := NewLBApp(pl, 3, 3)
			pl.Start()
			runProc(t, pl, func(p *sim.Proc) error {
				for i := 0; i < 6; i++ {
					if err := app.Do(p, i, make([]byte, 8192)); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestImageAppEndToEnd(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			pl := NewPlatform(DefaultConfig(mode))
			defer pl.Shutdown()
			app := NewImageApp(pl, 2)
			pl.Start()
			img := bytes.Repeat([]byte{0xA5}, 4096)
			runProc(t, pl, func(p *sim.Proc) error {
				out, err := app.Do(p, img)
				if err != nil {
					return err
				}
				if len(out) != len(img) {
					t.Errorf("output %dB, want %dB", len(out), len(img))
				}
				// The pipeline transform is XOR 0x5A.
				if out[0] != 0xA5^0x5A || out[4095] != 0xA5^0x5A {
					t.Errorf("transform wrong: %x", out[0])
				}
				return nil
			})
		})
	}
}

func TestImageAppNoPageLeak(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeDmNet))
	defer pl.Shutdown()
	app := NewImageApp(pl, 2)
	pl.Start()
	free := func() int {
		total := 0
		for _, s := range pl.DMServers() {
			total += s.FreePages()
		}
		return total
	}
	start := free()
	runProc(t, pl, func(p *sim.Proc) error {
		for i := 0; i < 4; i++ {
			if _, err := app.Do(p, make([]byte, 16384)); err != nil {
				return err
			}
		}
		return nil
	})
	if got := free(); got != start {
		t.Fatalf("page leak: %d free, started %d", got, start)
	}
}

func TestSocialNetMixedOps(t *testing.T) {
	for _, mode := range []Mode{ModeERPC, ModeDmNet} {
		t.Run(mode.String(), func(t *testing.T) {
			pl := NewPlatform(DefaultConfig(mode))
			defer pl.Shutdown()
			sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 8192})
			pl.Start()
			if err := sn.Prepopulate(5); err != nil {
				t.Fatal(err)
			}
			if sn.Posts() != 5 {
				t.Fatalf("Posts = %d", sn.Posts())
			}
			runProc(t, pl, func(p *sim.Proc) error {
				if err := sn.ReadHome(p); err != nil {
					return err
				}
				if err := sn.ReadUser(p); err != nil {
					return err
				}
				if err := sn.Compose(p); err != nil {
					return err
				}
				op := sn.MixedOp()
				for i := 0; i < 20; i++ {
					if err := op(p); err != nil {
						return err
					}
				}
				return nil
			})
			if sn.Posts() < 6 {
				t.Fatalf("mixed ops composed nothing: %d posts", sn.Posts())
			}
		})
	}
}

func TestSocialNetCXLMode(t *testing.T) {
	// Fig 11 compares eRPC and DmRPC-net, but the app must also run over
	// the CXL fabric (posts live in G-FAM, readers on other hosts map
	// them).
	pl := NewPlatform(DefaultConfig(ModeDmCXL))
	defer pl.Shutdown()
	sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 8192})
	pl.Start()
	if err := sn.Prepopulate(4); err != nil {
		t.Fatal(err)
	}
	runProc(t, pl, func(p *sim.Proc) error {
		for i := 0; i < 10; i++ {
			if err := sn.ReadHome(p); err != nil {
				return err
			}
		}
		return sn.ReadUser(p)
	})
}

func TestSocialNetConfigDefaults(t *testing.T) {
	c := SocialNetConfig{}.withDefaults()
	d := DefaultSocialNetConfig()
	if c != d {
		t.Fatalf("withDefaults = %+v, want %+v", c, d)
	}
	c = SocialNetConfig{MediaSize: 100}.withDefaults()
	if c.MediaSize != 100 || c.PostsPerRead != d.PostsPerRead || c.Clients != d.Clients {
		t.Fatalf("partial defaults wrong: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative config accepted")
		}
	}()
	SocialNetConfig{MediaSize: -1}.withDefaults()
}

func TestSocialNetTimelinePageSize(t *testing.T) {
	// A read must pull PostsPerRead posts through the movers: with
	// pass-by-value, the client's received bytes scale with the page size.
	bytesPerRead := func(postsPerRead int) int64 {
		pl := NewPlatform(DefaultConfig(ModeERPC))
		defer pl.Shutdown()
		sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 8192, PostsPerRead: postsPerRead, Clients: 1})
		pl.Start()
		if err := sn.Prepopulate(4); err != nil {
			t.Fatal(err)
		}
		cli := sn.Clients()[0]
		before := cli.Host.RxBytes()
		runProc(t, pl, func(p *sim.Proc) error { return sn.ReadHome(p) })
		return cli.Host.RxBytes() - before
	}
	one := bytesPerRead(1)
	three := bytesPerRead(3)
	if three < 2*one {
		t.Fatalf("3-post page moved %dB, single post %dB: page size not honored", three, one)
	}
}

func TestSocialNetRotatesClients(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 1024, Clients: 3})
	pl.Start()
	if err := sn.Prepopulate(2); err != nil {
		t.Fatal(err)
	}
	before := make([]int64, 3)
	for i, c := range sn.Clients() {
		before[i] = c.Node.Calls()
	}
	runProc(t, pl, func(p *sim.Proc) error {
		for i := 0; i < 6; i++ {
			if err := sn.ReadHome(p); err != nil {
				return err
			}
		}
		return nil
	})
	for i, c := range sn.Clients() {
		if c.Node.Calls() == before[i] {
			t.Fatalf("client %d issued no calls: rotation broken", i)
		}
	}
}

func TestSocialNetReadBeforeAnyPostFails(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 1024})
	pl.Start()
	var err error
	pl.Eng.Spawn("t", func(p *sim.Proc) { err = sn.ReadHome(p) })
	pl.Eng.Run()
	if err == nil {
		t.Fatal("read with no posts succeeded")
	}
}

func TestSocialNetUserTimelineTraversesMoreMovers(t *testing.T) {
	// read-user-timeline must be slower than read-home-timeline: two more
	// data movers in the path (5 vs 3).
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 8192})
	pl.Start()
	if err := sn.Prepopulate(3); err != nil {
		t.Fatal(err)
	}
	var home, user sim.Time
	runProc(t, pl, func(p *sim.Proc) error {
		t0 := p.Now()
		if err := sn.ReadHome(p); err != nil {
			return err
		}
		home = p.Now() - t0
		t1 := p.Now()
		if err := sn.ReadUser(p); err != nil {
			return err
		}
		user = p.Now() - t1
		return nil
	})
	if user <= home {
		t.Fatalf("user timeline %dns <= home %dns despite longer path", user, home)
	}
}

func TestColocationSharesHost(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	h := pl.AddHost("shared")
	a := pl.NewServiceOn(h, "svc-a")
	b := pl.NewServiceOn(h, "svc-b")
	if a.Host != b.Host {
		t.Fatal("colocated services on different hosts")
	}
	if a.Addr() == b.Addr() {
		t.Fatal("colocated services share an address")
	}
}

func TestPlatformGuards(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	pl.NewService("svc")
	pl.Start()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewService after Start did not panic")
			}
		}()
		pl.NewService("late")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Start did not panic")
			}
		}()
		pl.Start()
	}()
}
