// Command socialnet runs the DeathStarBench-style social network (paper
// §VI-F) standalone: prepopulates posts, offers a Poisson mixed workload
// (60% read-home-timeline, 30% read-user-timeline, 10% compose-post) and
// reports achieved rate and latency percentiles.
//
// Usage:
//
//	socialnet -mode dmnet -rate 200000 -duration 50ms -media 8192
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	modeFlag := flag.String("mode", "dmnet", "backend: erpc | dmnet")
	rate := flag.Float64("rate", 100_000, "offered request rate per second")
	duration := flag.Duration("duration", 50*time.Millisecond, "virtual measurement window")
	media := flag.Int("media", 8192, "post media size in bytes")
	posts := flag.Int("posts", 64, "posts to prepopulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var mode msvc.Mode
	switch *modeFlag {
	case "erpc":
		mode = msvc.ModeERPC
	case "dmnet":
		mode = msvc.ModeDmNet
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (socialnet compares erpc and dmnet, like Fig 11)\n", *modeFlag)
		os.Exit(2)
	}

	cfg := msvc.DefaultConfig(mode)
	cfg.Seed = *seed
	pl := msvc.NewPlatform(cfg)
	defer pl.Shutdown()
	sn := msvc.NewSocialNet(pl, msvc.SocialNetConfig{MediaSize: *media})
	pl.Start()
	if err := sn.Prepopulate(*posts); err != nil {
		fmt.Fprintf(os.Stderr, "prepopulate: %v\n", err)
		os.Exit(1)
	}

	window := sim.Time(duration.Nanoseconds())
	res := workload.RunOpen(pl.Eng, workload.OpenConfig{
		Rate:    *rate,
		Warmup:  window / 10,
		Measure: window,
	}, sn.MixedOp())

	s := res.Latency.Summarize()
	fmt.Printf("mode=%s offered=%s media=%s posts(start)=%d\n",
		mode, stats.Rate(*rate), stats.Bytes(int64(*media)), *posts)
	fmt.Printf("achieved:  %s (errors %d, dropped %d)\n",
		stats.Rate(res.Throughput()), res.Errors, res.Dropped)
	fmt.Printf("latency:   avg=%s p50=%s p99=%s p99.9=%s max=%s\n",
		stats.Dur(int64(s.Mean)), stats.Dur(s.P50), stats.Dur(s.P99), stats.Dur(s.P999), stats.Dur(s.Max))
	fmt.Printf("posts now: %d\n", sn.Posts())
}
