package bench

import (
	"fmt"
	"io"

	"repro/internal/cxlsim"
	"repro/internal/dm"
	"repro/internal/dmnet"
	"repro/internal/memsim"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Fig7Row is one (system, request size) measurement of the create_ref
// micro-benchmark (§VI-C, Fig 7): the copy-on-write systems against their
// unconditional-copy (-copy) counterparts.
type Fig7Row struct {
	System        string
	ReqSize       int
	Rate          float64  // create_ref/s
	AvgLatency    sim.Time // create_ref response time
	TrafficPerReq int64    // DM memory traffic per request (Fig 7c)
}

// Fig7Result holds the Fig 7 sweep.
type Fig7Result struct {
	Rows []Fig7Row
}

// fig7System is one configured system under test.
type fig7System struct {
	name     string
	space    dm.Space
	eng      *sim.Engine
	dev      *memsim.Device
	shutdown func()
}

// setupFig7Net builds a DmRPC-net system with a single-core memory server
// ("we use one CPU core in a single memory server", §VI-C).
func setupFig7Net(copyMode bool) *fig7System {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	scfg := dmnet.DefaultServerConfig()
	scfg.RPC.Workers = 1
	scfg.Memory.NumPages = 1 << 14
	scfg.UnconditionalCopy = copyMode
	srv := dmnet.NewServer(net.AddHost("dmserver"), 1, 0, scfg)
	srv.Start()
	node := rpc.NewNode(net.AddHost("client"), 1, "client", rpc.DefaultConfig())
	node.Start()
	cl := dmnet.NewClient(node, []simnet.Addr{srv.Addr()})
	eng.Spawn("register", func(p *sim.Proc) {
		if err := cl.Register(p); err != nil {
			panic(err)
		}
	})
	eng.Run()
	name := "DmRPC-net"
	if copyMode {
		name += "-copy"
	}
	return &fig7System{name: name, space: cl, eng: eng, dev: srv.Device(), shutdown: eng.Shutdown}
}

// setupFig7CXL builds a DmRPC-CXL system driven by one client thread.
func setupFig7CXL(copyMode bool) *fig7System {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	ccfg := cxlsim.DefaultConfig()
	ccfg.Memory.NumPages = 1 << 14
	ccfg.UnconditionalCopy = copyMode
	gfam := cxlsim.NewGFAM(eng, 0, ccfg)
	coord := cxlsim.NewCoordinator(net.AddHost("coord"), 1, gfam, rpc.DefaultConfig())
	coord.Start()
	hd := cxlsim.NewHostDM(net.AddHost("compute"), 1, gfam, coord.Addr(), rpc.DefaultConfig())
	name := "DmRPC-CXL"
	if copyMode {
		name += "-copy"
	}
	return &fig7System{name: name, space: hd.NewSpace(), eng: eng, dev: gfam.Device(), shutdown: eng.Shutdown}
}

// Fig7 reproduces Fig 7a/7b/7c: create_ref rate, response time and DM
// traffic per request, CoW vs unconditional copy, across request sizes.
func Fig7(scale Scale) Fig7Result {
	sizes := []int{4096, 65536, 262144}
	if scale == Full {
		sizes = []int{4096, 16384, 65536, 262144, 524288}
	}
	warm, meas := scale.windows()
	var res Fig7Result
	systems := []struct {
		mk      func(bool) *fig7System
		copyOn  bool
		clients int
	}{
		{setupFig7Net, false, 8},
		{setupFig7Net, true, 8},
		{setupFig7CXL, false, 1},
		{setupFig7CXL, true, 1},
	}
	for _, sys := range systems {
		for _, size := range sizes {
			s := sys.mk(sys.copyOn)
			row := measureCreateRef(s, size, sys.clients, warm, meas)
			s.shutdown()
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// measureCreateRef stages a region of size bytes once, then drives
// create_ref/free_ref cycles from the given number of client processes,
// timing only the create_ref call.
func measureCreateRef(s *fig7System, size, clients int, warm, meas sim.Time) Fig7Row {
	row := Fig7Row{System: s.name, ReqSize: size}
	// Stage the region once.
	var addr dm.RemoteAddr
	s.eng.Spawn("stage", func(p *sim.Proc) {
		a, err := s.space.Alloc(p, int64(size))
		if err != nil {
			panic(err)
		}
		if err := s.space.Write(p, a, make([]byte, size)); err != nil {
			panic(err)
		}
		addr = a
	})
	s.eng.Run()

	start := s.eng.Now()
	measFrom := start + warm
	measTo := measFrom + meas
	var hist stats.Histogram
	var ops int64
	s.eng.At(measFrom, func() { s.dev.ResetTraffic() })
	for i := 0; i < clients; i++ {
		s.eng.Spawn(fmt.Sprintf("cr-%d", i), func(p *sim.Proc) {
			for {
				if p.Now() >= measTo {
					return
				}
				t0 := p.Now()
				ref, err := s.space.CreateRef(p, addr, int64(size))
				if err != nil {
					panic(err)
				}
				t1 := p.Now()
				if t1 >= measFrom && t1 < measTo {
					ops++
					hist.Record(t1 - t0)
				}
				if err := s.space.FreeRef(p, ref); err != nil {
					panic(err)
				}
			}
		})
	}
	s.eng.RunUntil(measTo)
	row.Rate = float64(ops) * float64(sim.Second) / float64(meas)
	row.AvgLatency = sim.Time(hist.Mean())
	if ops > 0 {
		row.TrafficPerReq = s.dev.Traffic().Total() / ops
	}
	return row
}

// PrintRate writes the Fig 7a table.
func (r Fig7Result) PrintRate(w io.Writer) {
	header(w, "fig7a", "create_ref request rate")
	t := stats.NewTable("system", "req size", "rate")
	for _, row := range r.Rows {
		t.AddRow(row.System, stats.Bytes(int64(row.ReqSize)), stats.Rate(row.Rate))
	}
	io.WriteString(w, t.String())
}

// PrintLatency writes the Fig 7b table.
func (r Fig7Result) PrintLatency(w io.Writer) {
	header(w, "fig7b", "create_ref response time")
	t := stats.NewTable("system", "req size", "avg latency")
	for _, row := range r.Rows {
		t.AddRow(row.System, stats.Bytes(int64(row.ReqSize)), stats.Dur(row.AvgLatency))
	}
	io.WriteString(w, t.String())
}

// PrintTraffic writes the Fig 7c table.
func (r Fig7Result) PrintTraffic(w io.Writer) {
	header(w, "fig7c", "average DM memory traffic per request")
	t := stats.NewTable("system", "req size", "traffic/req")
	for _, row := range r.Rows {
		t.AddRow(row.System, stats.Bytes(int64(row.ReqSize)), stats.Bytes(row.TrafficPerReq))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (system, size).
func (r Fig7Result) Get(system string, size int) (Fig7Row, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.ReqSize == size {
			return row, true
		}
	}
	return Fig7Row{}, false
}
